package accel

import (
	"sort"

	"mealib/internal/descriptor"
	"mealib/internal/phys"
	"mealib/internal/units"
)

// Iteration-independence analysis for hardware LOOP nests.
//
// The decode unit dispatches LOOP iterations round-robin over the tiles
// (paper §2.2); the hardware can do that because the compiler only emits a
// LOOP when the OpenMP source proved the iterations independent. The
// functional interpreter re-derives that guarantee before fanning out: it
// materialises every iteration's read and write byte spans (the same affine
// base + Σ stride·index arithmetic the decode unit performs) and sweeps
// them for a cross-iteration conflict — a write from one iteration
// overlapping any span of another. Overlap, an undecodable comp, or an
// event count past indepMaxEvents all fall back to serial execution, so
// parallelism is never a correctness gamble.

// indepMaxEvents caps the spans the checker is willing to materialise;
// beyond it the loop runs serially rather than spend unbounded memory on
// the analysis (1M events ≈ 48 MB, checked in well under the time the
// loop body itself will take at that scale).
const indepMaxEvents = 1 << 20

// ioSpan is one byte range an invocation reads or writes.
type ioSpan struct {
	addr  phys.Addr
	bytes units.Bytes
	write bool
}

// ioSpansOf lists the directional spans of one invocation at iteration it.
// Unlike spansOf (locality classification), reads and writes are separated
// and read-modify-write operands appear in both directions.
func ioSpansOf(op descriptor.OpCode, p descriptor.Params, it IterVec) ([]ioSpan, error) {
	switch op {
	case descriptor.OpAXPY:
		a, err := DecodeAxpyArgs(p)
		if err != nil {
			return nil, err
		}
		a = a.shift(it)
		return []ioSpan{
			{a.X, units.Bytes(4 * span64(a.N, a.IncX)), false},
			{a.Y, units.Bytes(4 * span64(a.N, a.IncY)), false}, // y is read (accumulated) ...
			{a.Y, units.Bytes(4 * span64(a.N, a.IncY)), true},  // ... and written
		}, nil
	case descriptor.OpDOT:
		a, err := DecodeDotArgs(p)
		if err != nil {
			return nil, err
		}
		a = a.shift(it)
		elem := int64(4)
		if a.Complex {
			elem = 8
		}
		return []ioSpan{
			{a.X, units.Bytes(elem * span64(a.N, a.IncX)), false},
			{a.Y, units.Bytes(elem * span64(a.N, a.IncY)), false},
			{a.Out, units.Bytes(elem), true},
		}, nil
	case descriptor.OpGEMV:
		a, err := DecodeGemvArgs(p)
		if err != nil {
			return nil, err
		}
		a = a.shift(it)
		matLen := int64(0)
		if a.M > 0 {
			matLen = (a.M-1)*a.Lda + a.N
		}
		return []ioSpan{
			{a.A, units.Bytes(4 * matLen), false},
			{a.X, units.Bytes(4 * a.N), false},
			{a.Y, units.Bytes(4 * a.M), false}, // beta scaling reads y
			{a.Y, units.Bytes(4 * a.M), true},
		}, nil
	case descriptor.OpSPMV:
		a, err := DecodeSpmvArgs(p)
		if err != nil {
			return nil, err
		}
		// SPMV has no loop strides: every iteration touches the same spans,
		// so inside a LOOP it always reports a conflict (correctly).
		return []ioSpan{
			{a.RowPtr, units.Bytes(4 * (a.M + 1)), false},
			{a.ColIdx, units.Bytes(4 * a.NNZ), false},
			{a.Values, units.Bytes(4 * a.NNZ), false},
			{a.X, units.Bytes(4 * a.Cols), false},
			{a.Y, units.Bytes(4 * a.M), true},
		}, nil
	case descriptor.OpRESMP:
		a, err := DecodeResmpArgs(p)
		if err != nil {
			return nil, err
		}
		a = a.shift(it)
		elem := int64(4)
		if a.Kind >= ResmpComplex {
			elem = 8
		}
		return []ioSpan{
			{a.Src, units.Bytes(elem * a.NIn), false},
			{a.Dst, units.Bytes(elem * a.NOut), true},
		}, nil
	case descriptor.OpFFT:
		a, err := DecodeFFTArgs(p)
		if err != nil {
			return nil, err
		}
		a = a.shift(it)
		total := 8 * a.N * a.HowMany
		return []ioSpan{
			{a.Src, units.Bytes(total), false},
			{a.Dst, units.Bytes(total), true},
		}, nil
	case descriptor.OpRESHP:
		a, err := DecodeReshpArgs(p)
		if err != nil {
			return nil, err
		}
		elem := int64(4)
		if a.Elem == ElemC64 {
			elem = 8
		}
		n := elem * a.Rows * a.Cols
		return []ioSpan{
			{a.Src, units.Bytes(n), false},
			{a.Dst, units.Bytes(n), true},
		}, nil
	default:
		return nil, nil
	}
}

// iterEvent is one span tagged with the iteration that owns it.
type iterEvent struct {
	start, end uint64 // [start, end) physical bytes
	iter       int64
	write      bool
}

// top2 tracks, over the events seen so far, the maximum span end (end1,
// owned by iter1) and the maximum end among events owned by any OTHER
// iteration (end2). That is enough to answer "does any already-seen event
// from a different iteration reach past this start?" in O(1): if the
// global max is another iteration's, compare against it; if the global max
// is our own, compare against end2. end2 may over-approximate after the
// leader changes (events folded into it can share the new leader's
// iteration), which can only produce a false conflict — a safe,
// serial-fallback direction.
type top2 struct {
	end1  uint64
	iter1 int64
	end2  uint64
}

func newTop2() top2 { return top2{iter1: -1} }

func (t *top2) add(end uint64, iter int64) {
	switch {
	case iter == t.iter1:
		if end > t.end1 {
			t.end1 = end
		}
	case end >= t.end1:
		if t.iter1 >= 0 && t.end1 > t.end2 {
			t.end2 = t.end1
		}
		t.end1, t.iter1 = end, iter
	default:
		if end > t.end2 {
			t.end2 = end
		}
	}
}

// reaches reports whether a seen event from an iteration other than iter
// extends past start.
func (t *top2) reaches(start uint64, iter int64) bool {
	if t.iter1 < 0 {
		return false
	}
	if t.iter1 != iter {
		return t.end1 > start
	}
	return t.end2 > start
}

// loopIndependent reports whether every pair of distinct iterations of the
// loop nest touches disjoint memory (same-iteration overlap is fine — one
// iteration's comps run in order on one tile). Any failure to resolve
// spans returns false.
func loopIndependent(counts descriptor.LoopCounts, passes [][]passInstr, iters int64) bool {
	spansPerIter := 0
	for _, p := range passes {
		for range p {
			spansPerIter += 5 // upper bound per comp (SPMV)
		}
	}
	if spansPerIter == 0 || iters*int64(spansPerIter) > indepMaxEvents {
		return false
	}
	events := make([]iterEvent, 0, iters*int64(spansPerIter))
	for idx := int64(0); idx < iters; idx++ {
		it := iterVecAt(counts, idx)
		for _, pass := range passes {
			for _, pi := range pass {
				spans, err := ioSpansOf(pi.op, pi.params, it)
				if err != nil || spans == nil {
					return false
				}
				for _, sp := range spans {
					if sp.bytes <= 0 {
						continue
					}
					start := uint64(sp.addr)
					end := start + uint64(sp.bytes)
					if end < start { // address wrap: unresolvable
						return false
					}
					events = append(events, iterEvent{start: start, end: end, iter: idx, write: sp.write})
				}
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].start < events[j].start })
	reads, writes := newTop2(), newTop2()
	for _, e := range events {
		// A write conflicts with any prior span of another iteration still
		// covering e.start; a read only conflicts with such a write.
		if writes.reaches(e.start, e.iter) {
			return false
		}
		if e.write {
			if reads.reaches(e.start, e.iter) {
				return false
			}
			writes.add(e.end, e.iter)
		} else {
			reads.add(e.end, e.iter)
		}
	}
	return true
}
