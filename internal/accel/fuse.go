package accel

import (
	"fmt"

	"mealib/internal/descriptor"
	"mealib/internal/units"
)

// Descriptor fusion: a compile pass over the plan IR that merges adjacent
// producer→consumer passes into single chained passes, so the intermediate
// buffer lives in tile-local scratch (charged to the NoC by runPass) instead
// of round-tripping through DRAM between launches of the two datapaths.
//
// A pair of adjacent passes in the same scope (both top-level, or both in
// the same LOOP body) fuses when:
//
//  1. Handoff: the producer pass's last comp writes exactly the span the
//     consumer pass's first comp reads — same base address, same byte
//     count, and the same per-level loop strides, so the equality holds at
//     every iteration of the surrounding nest ("consumed whole").
//  2. No WAR hazard: no comp of the consumer pass writes memory any comp of
//     the producer pass reads (the chained datapath streams concurrently;
//     this mirrors the in-pass rule the tdlcheck verifier enforces).
//  3. Single consumer: no other comp anywhere in the descriptor touches the
//     intermediate's whole-loop extent — a second reader needs the DRAM
//     copy, so multi-consumer intermediates are never fused.
//  4. Capacity: the per-iteration handoff bytes of the merged pass fit the
//     aggregate tile-local memory. A chain that exceeds it falls back to
//     DRAM (the pair stays unfused) and is counted as a fusion spill.
//
// All span arithmetic is affine in the iteration vector, so every "for all
// iterations" property is decided exactly by evaluating the spans at the
// corners of the loop-count box. Fusion never changes functional execution:
// the comps still run in program order against the space and the
// intermediate is still materialised, so fused and unfused runs are
// bit-identical; only the model (time, energy, DRAM traffic) and the plan
// shape (fewer, wider nodes) change.

// FusedGroup describes one applied fusion: a run of adjacent passes merged
// into a single chained pass.
type FusedGroup struct {
	// FirstPass is the program-order index (counting every pass, top-level
	// and loop-body alike) of the group's first original pass.
	FirstPass int
	// Passes is how many original passes the group merged.
	Passes int
	// Ops are the accelerator mnemonics of the fused chain, in order.
	Ops []string
	// HandoffBytes is the per-iteration intermediate traffic the group keeps
	// in tile-local scratch (the sum over the group's producer→consumer
	// links).
	HandoffBytes units.Bytes
	// Iters is the surrounding loop trip count (1 for top-level groups):
	// the group elides 2*HandoffBytes*Iters bytes of DRAM traffic per
	// launch (the producer's store plus the consumer's load).
	Iters int64
}

// planSegment is one scope of a descriptor: either a run of consecutive
// top-level passes or one LOOP nest with its body passes.
type planSegment struct {
	loop   bool
	counts descriptor.LoopCounts
	passes [][]passInstr
	// comps holds the global comp index of every comp, parallel to passes.
	comps [][]int
	// firstPass is the program-order index of passes[0].
	firstPass int
}

// segmentsOf decodes the descriptor into scope segments with resolved
// parameter blocks.
func segmentsOf(d *descriptor.Descriptor) ([]planSegment, error) {
	var segs []planSegment
	var pass []passInstr
	var ids []int
	comp := 0
	npass := 0
	inLoop := false
	topSeg := -1 // index of the open run of top-level passes
	for _, in := range d.Instrs {
		switch in.Kind {
		case descriptor.KindComp:
			params, err := d.ParamsOf(comp)
			if err != nil {
				return nil, err
			}
			pass = append(pass, passInstr{op: in.Op, params: params})
			ids = append(ids, comp)
			comp++
		case descriptor.KindEndPass:
			if inLoop {
				seg := &segs[len(segs)-1]
				seg.passes = append(seg.passes, pass)
				seg.comps = append(seg.comps, ids)
			} else {
				if topSeg < 0 {
					topSeg = len(segs)
					segs = append(segs, planSegment{firstPass: npass})
				}
				segs[topSeg].passes = append(segs[topSeg].passes, pass)
				segs[topSeg].comps = append(segs[topSeg].comps, ids)
			}
			pass, ids = nil, nil
			npass++
		case descriptor.KindLoop:
			inLoop = true
			topSeg = -1
			segs = append(segs, planSegment{loop: true, counts: in.Counts, firstPass: npass})
		case descriptor.KindEndLoop:
			inLoop = false
		}
	}
	return segs, nil
}

// extSpan is one byte range a comp touches anywhere in its loop-count box.
type extSpan struct {
	lo, hi uint64 // [lo, hi)
	write  bool
}

func (e extSpan) overlaps(lo, hi uint64) bool { return e.lo < hi && lo < e.hi }

// cornersOf enumerates the corner iteration vectors of a loop-count box.
// Affine span addresses attain their extremes at corners, and two affine
// spans equal on every corner are equal at every iteration.
func cornersOf(counts descriptor.LoopCounts) []IterVec {
	levels := make([]int64, descriptor.MaxLoopLevels)
	vary := 0
	for l, c := range counts {
		if int64(c) > 1 {
			levels[l] = int64(c) - 1
			vary++
		}
	}
	out := make([]IterVec, 0, 1<<vary)
	for mask := 0; mask < 1<<descriptor.MaxLoopLevels; mask++ {
		var it IterVec
		skip := false
		for l := 0; l < descriptor.MaxLoopLevels; l++ {
			if mask&(1<<l) != 0 {
				if levels[l] == 0 {
					skip = true // degenerate level: corner already covered
					break
				}
				it[l] = levels[l]
			}
		}
		if !skip {
			out = append(out, it)
		}
	}
	return out
}

// compExtents resolves one comp's spans over the whole box into extents.
// ok is false when the spans cannot be resolved (unknown op, wrap).
func compExtents(op descriptor.OpCode, params descriptor.Params, corners []IterVec) ([]extSpan, bool) {
	var out []extSpan
	for ci, it := range corners {
		spans, err := ioSpansOf(op, params, it)
		if err != nil || spans == nil {
			return nil, false
		}
		if ci == 0 {
			out = make([]extSpan, len(spans))
			for i, sp := range spans {
				out[i] = extSpan{lo: uint64(sp.addr), hi: uint64(sp.addr) + uint64(sp.bytes), write: sp.write}
			}
			continue
		}
		if len(spans) != len(out) {
			return nil, false
		}
		for i, sp := range spans {
			lo := uint64(sp.addr)
			hi := lo + uint64(sp.bytes)
			if lo < out[i].lo {
				out[i].lo = lo
			}
			if hi > out[i].hi {
				out[i].hi = hi
			}
		}
	}
	for _, e := range out {
		if e.hi < e.lo { // address wrap
			return nil, false
		}
	}
	return out, true
}

// cornerSpans evaluates a comp's directional spans at every corner,
// corner-major. nil when unresolvable.
func cornerSpans(op descriptor.OpCode, params descriptor.Params, corners []IterVec) [][]ioSpan {
	out := make([][]ioSpan, len(corners))
	for i, it := range corners {
		spans, err := ioSpansOf(op, params, it)
		if err != nil || spans == nil {
			return nil
		}
		out[i] = spans
	}
	return out
}

// handoffOf finds the producer→consumer handoff between the last comp of
// pass a and the first comp of pass b: a read operand of the consumer that
// equals the producer's written span at every corner. Returns the
// per-iteration handoff size, or an error describing why none exists.
func handoffOf(a, b []passInstr, corners []IterVec) (units.Bytes, error) {
	prod := a[len(a)-1]
	cons := b[0]
	ps := cornerSpans(prod.op, prod.params, corners)
	cs := cornerSpans(cons.op, cons.params, corners)
	if ps == nil || cs == nil {
		return 0, fmt.Errorf("accel: fuse: unresolvable operand spans")
	}
	// The producer's output is its written span (every accelerator writes
	// exactly one operand).
	wi := -1
	for i, sp := range ps[0] {
		if sp.write {
			if wi >= 0 {
				return 0, fmt.Errorf("accel: fuse: %v writes more than one operand", prod.op)
			}
			wi = i
		}
	}
	if wi < 0 || ps[0][wi].bytes <= 0 {
		return 0, fmt.Errorf("accel: fuse: %v produces no output span", prod.op)
	}
	for ri, sp := range cs[0] {
		if sp.write {
			continue
		}
		match := true
		for c := range corners {
			w, r := ps[c][wi], cs[c][ri]
			if r.addr != w.addr || r.bytes != w.bytes {
				match = false
				break
			}
		}
		if match {
			return ps[0][wi].bytes, nil
		}
	}
	return 0, fmt.Errorf("accel: fuse: %v output is not consumed whole by %v", prod.op, cons.op)
}

// warHazard reports whether any comp of pass b writes memory any comp of
// pass a reads, judged on whole-box extents (conservative): the fused
// datapath streams the stages concurrently, so a consumer-side write over a
// producer-side read would race in hardware. exts maps global comp index to
// extents; ids give the comps' global indices.
func warHazard(aIDs, bIDs []int, exts [][]extSpan) bool {
	for _, bi := range bIDs {
		for _, w := range exts[bi] {
			if !w.write {
				continue
			}
			for _, ai := range aIDs {
				for _, r := range exts[ai] {
					if !r.write && r.overlaps(w.lo, w.hi) {
						return true
					}
				}
			}
		}
	}
	return false
}

// singleConsumer reports whether the handoff extent [lo, hi) is untouched by
// every comp other than the producer and consumer. A second toucher means
// the intermediate must exist in DRAM after all.
func singleConsumer(lo, hi uint64, producer, consumer int, exts [][]extSpan) bool {
	for id, spans := range exts {
		if id == producer || id == consumer {
			continue
		}
		for _, e := range spans {
			if e.overlaps(lo, hi) {
				return false
			}
		}
	}
	return true
}

// fuseResult is the outcome of the fusion pass over one descriptor.
type fuseResult struct {
	groups []FusedGroup
	// spills counts adjacent producer→consumer pairs left unfused because
	// the handoff would overflow the tile-local memories.
	spills int
	// scratch is the peak per-iteration scratch any fused pass occupies.
	scratch units.Bytes
}

// fuseSegments merges adjacent fusible passes within each segment, in
// place. lmCap is the aggregate tile-local capacity the chained
// intermediates of one pass may occupy.
func fuseSegments(segs []planSegment, lmCap units.Bytes) fuseResult {
	var res fuseResult
	// Liveness needs every comp's whole-box extents, across all segments.
	total := 0
	for _, seg := range segs {
		for _, ids := range seg.comps {
			total += len(ids)
		}
	}
	exts := make([][]extSpan, total)
	for _, seg := range segs {
		corners := cornersOf(seg.counts)
		for pi, pass := range seg.passes {
			for ci, in := range pass {
				e, ok := compExtents(in.op, in.params, corners)
				if !ok {
					// One unresolvable comp blinds the liveness scan for the
					// whole descriptor: fuse nothing.
					return fuseResult{}
				}
				exts[seg.comps[pi][ci]] = e
			}
		}
	}
	for si := range segs {
		seg := &segs[si]
		if len(seg.passes) < 2 {
			continue
		}
		corners := cornersOf(seg.counts)
		iters := int64(1)
		if seg.loop {
			iters = seg.counts.Total()
		}
		var passes [][]passInstr
		var comps [][]int
		var origin []int // original program-order pass index of each output pass
		var group *FusedGroup
		var groupScratch units.Bytes
		flush := func() {
			if group != nil && group.Passes > 1 {
				res.groups = append(res.groups, *group)
				if groupScratch > res.scratch {
					res.scratch = groupScratch
				}
			}
			group = nil
			groupScratch = 0
		}
		for pi, pass := range seg.passes {
			ids := seg.comps[pi]
			if len(passes) > 0 {
				prev := passes[len(passes)-1]
				prevIDs := comps[len(comps)-1]
				hb, err := handoffOf(prev, pass, corners)
				switch {
				case err != nil:
					// No producer→consumer relationship: fall through.
				case groupScratch+hb > lmCap:
					res.spills++
				case warHazard(prevIDs, ids, exts):
					// Unsafe to stream concurrently: keep the DRAM boundary.
				default:
					producer := prevIDs[len(prevIDs)-1]
					consumer := ids[0]
					// The handoff's whole-box extent is the producer's write
					// extent (the consumer's matched read equals it at every
					// corner by construction).
					var wlo, whi uint64
					for _, e := range exts[producer] {
						if e.write {
							wlo, whi = e.lo, e.hi
						}
					}
					if !singleConsumer(wlo, whi, producer, consumer, exts) {
						break
					}
					merged := append(append([]passInstr(nil), prev...), pass...)
					passes[len(passes)-1] = merged
					comps[len(comps)-1] = append(append([]int(nil), prevIDs...), ids...)
					if group == nil {
						group = &FusedGroup{
							FirstPass: origin[len(origin)-1],
							Passes:    1,
							Iters:     iters,
							Ops:       opsOf(prev),
						}
					}
					group.Passes++
					group.Ops = append(group.Ops, opsOf(pass)...)
					group.HandoffBytes += hb
					groupScratch += hb
					continue
				}
			}
			flush()
			passes = append(passes, pass)
			comps = append(comps, ids)
			origin = append(origin, seg.firstPass+pi)
		}
		flush()
		seg.passes = passes
		seg.comps = comps
	}
	return res
}

// opsOf lists the mnemonics of a pass.
func opsOf(pass []passInstr) []string {
	out := make([]string, len(pass))
	for i, in := range pass {
		out[i] = in.op.String()
	}
	return out
}

// FusionGroups runs the fusion analysis over a descriptor and reports the
// pass groups that would merge under cfg (capacity from LMBytes*Tiles),
// without building or executing a plan. The TDL compiler path uses this to
// apply the identical merges to the source program, so descriptor-level and
// plan-level fusion can never disagree.
func FusionGroups(d *descriptor.Descriptor, cfg *Config) ([]FusedGroup, error) {
	segs, err := segmentsOf(d)
	if err != nil {
		return nil, err
	}
	res := fuseSegments(segs, cfg.LMBytes*units.Bytes(cfg.Tiles))
	return res.groups, nil
}

// ChainComp is one stage of a candidate fused chain (builder API surface).
type ChainComp struct {
	Op     descriptor.OpCode
	Params descriptor.Params
}

// VerifyChain checks that comps form a legal fused chain over the loop
// counts: every adjacent pair must have an exact producer→consumer handoff,
// no later stage may write memory an earlier stage reads, and the summed
// per-iteration handoffs must fit the aggregate tile-local capacity lmCap.
// It returns the total per-iteration handoff bytes on success.
func VerifyChain(comps []ChainComp, counts descriptor.LoopCounts, lmCap units.Bytes) (units.Bytes, error) {
	if len(comps) < 2 {
		return 0, fmt.Errorf("accel: chain needs at least two comps, got %d", len(comps))
	}
	corners := cornersOf(counts)
	pass := make([]passInstr, len(comps))
	exts := make([][]extSpan, len(comps))
	for i, c := range comps {
		pass[i] = passInstr{op: c.Op, params: c.Params}
		e, ok := compExtents(c.Op, c.Params, corners)
		if !ok {
			return 0, fmt.Errorf("accel: chain stage %d (%v): unresolvable operand spans", i, c.Op)
		}
		exts[i] = e
	}
	var total units.Bytes
	for i := 0; i+1 < len(pass); i++ {
		hb, err := handoffOf(pass[i:i+1], pass[i+1:i+2], corners)
		if err != nil {
			return 0, fmt.Errorf("accel: chain stages %d→%d: %w", i, i+1, err)
		}
		total += hb
	}
	if total > lmCap {
		return 0, fmt.Errorf("accel: chain handoff %v exceeds tile-local capacity %v", total, lmCap)
	}
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			for _, w := range exts[j] {
				if !w.write {
					continue
				}
				for _, r := range exts[i] {
					if !r.write && r.overlaps(w.lo, w.hi) {
						return 0, fmt.Errorf("accel: chain stage %d (%v) writes memory stage %d (%v) reads",
							j, comps[j].Op, i, comps[i].Op)
					}
				}
			}
		}
	}
	return total, nil
}
