package accel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mealib/internal/telemetry"
	"mealib/internal/units"
)

// Wavefront scheduler over the execution-plan IR (plan.go). Nodes execute
// in topological waves: wave w starts only after wave w-1 completed, and
// within a wave every node is pairwise independent (conflicting nodes are
// ordered by dependence edges, and waves strictly increase along edges).
// Independent work therefore runs concurrently on the worker pool while
// dependent work pipelines wave by wave — an SPMV loop's serial chain
// interleaves with unrelated passes instead of serialising the whole
// descriptor.
//
// Determinism: each node builds a private sub-report; sub-reports merge in
// node (program) order regardless of which goroutine ran which node, and
// memory effects are ordered by the edges. Serial (Workers=1) and
// scheduled runs are therefore bit-identical in both memory and Report.

// planWorkers sizes the pool for a plan: cfg.Workers if set (1 forces
// serial), else min(GOMAXPROCS, Tiles), never wider than the plan's widest
// wave.
func (l *Layer) planWorkers(p *plan) int {
	w := l.cfg.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if w > l.cfg.Tiles {
			w = l.cfg.Tiles
		}
	}
	if w > p.maxWidth {
		w = p.maxWidth
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runNode executes one node into a fresh sub-report: the pass datapath at
// the node's iteration, the iteration-dispatch charge if the node closes
// an iteration, and the model-collapse scale. The node's span lands on tb,
// the buffer of whichever goroutine runs it.
func (l *Layer) runNode(exec execFunc, nd *planNode, tb *telemetry.Buf) (*Report, error) {
	name := "node"
	if len(nd.pass) == 1 {
		name = nd.pass[0].op.String()
	} else if len(nd.pass) > 1 {
		// A multi-comp (chained or fused) pass: name the span after the
		// whole chain so fusion is visible in traces.
		name = nd.pass[0].op.String()
		for _, pi := range nd.pass[1:] {
			name += "+" + pi.op.String()
		}
	}
	tb.Begin(telemetry.SpanNode, name)
	sub := newReport()
	if err := l.runPass(exec, nd.pass, nd.it, sub); err != nil {
		tb.End(telemetry.SpanNode, 0)
		return nil, err
	}
	if nd.dispatch {
		sub.Time += l.iterDispatch()
	}
	if nd.scale > 1 {
		sub.scale(nd.scale)
	}
	tb.End2(telemetry.SpanNode, sub.Time,
		telemetry.Arg{Key: "scale", Val: nd.scale},
		telemetry.Arg{Key: "comps", Val: sub.Comps})
	l.met.nodes.Add(1)
	return sub, nil
}

// scale multiplies every accumulated quantity by n (a model-collapsed
// node stands for n identical iterations).
func (r *Report) scale(n int64) {
	r.Time *= units.Seconds(n)
	r.Energy *= units.Joules(n)
	r.Comps *= n
	r.NoCBytes *= units.Bytes(n)
	r.LMSpillBytes *= units.Bytes(n)
	r.RemoteBytes *= units.Bytes(n)
	r.ElidedBytes *= units.Bytes(n)
	for _, st := range r.PerOp {
		st.Invocations *= n
		st.Time *= units.Seconds(n)
		st.Energy *= units.Joules(n)
		st.Flops *= units.Flops(n)
		st.Bytes *= units.Bytes(n)
	}
}

// runPlan executes the plan with the given evaluator and returns the
// merged report. The first error in node order wins, matching what serial
// execution would have returned. Non-nil hooks bracket every wave with
// WaveStart/WaveDone (hooks.go) and force the wave loop even at one worker,
// so external gating sees the same wave boundaries either way; sub-reports
// still merge in node order, keeping hooked and unhooked runs bit-identical.
func (l *Layer) runPlan(p *plan, exec execFunc, tb *telemetry.Buf, hooks WaveHooks) (*Report, error) {
	rep := newReport()
	rep.Time += p.fixed
	workers := l.planWorkers(p)
	l.met.wavesPerLaunch.Observe(int64(len(p.waves)))
	l.met.fusedGroups.Add(int64(len(p.fused)))
	l.met.fusionSpills.Add(int64(p.fusionSpills))
	if hooks != nil {
		hooks.Lowered(waveSpansOf(p))
	}
	if workers <= 1 && hooks == nil {
		// Serial: node order is a topological order (edges always point
		// forward), so in-order execution respects every edge.
		for k := range p.nodes {
			sub, err := l.runNode(exec, &p.nodes[k], tb)
			if err != nil {
				return nil, err
			}
			rep.merge(sub)
		}
		return rep, nil
	}
	subs := make([]*Report, len(p.nodes))
	errs := make([]error, len(p.nodes))
	failed := false
	elapsed := p.fixed
	for wi, wave := range p.waves {
		l.met.waveWidth.Observe(int64(len(wave)))
		if hooks != nil {
			hooks.WaveStart(wi)
		}
		tb.Begin(telemetry.SpanWave, "wave")
		if len(wave) == 1 || workers == 1 {
			// Single-node waves (and hooked serial runs) execute inline: a
			// serial chain (SPMV loop, chained passes) must not pay
			// goroutine hand-off per node.
			for _, k := range wave {
				subs[k], errs[k] = l.runNode(exec, &p.nodes[k], tb)
			}
		} else {
			w := workers
			if w > len(wave) {
				w = len(wave)
			}
			var next atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < w; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Each wave worker records onto its own buffer; the
					// coordinator's wave span brackets them all.
					wb := l.tr.Buffer(telemetry.TrackAccel)
					defer wb.Release()
					for {
						pos := next.Add(1) - 1
						if pos >= int64(len(wave)) {
							return
						}
						k := wave[pos]
						subs[k], errs[k] = l.runNode(exec, &p.nodes[k], wb)
					}
				}()
			}
			wg.Wait()
		}
		tb.End2(telemetry.SpanWave, 0,
			telemetry.Arg{Key: "wave", Val: int64(wi)},
			telemetry.Arg{Key: "width", Val: int64(len(wave))})
		for _, k := range wave {
			if errs[k] != nil {
				failed = true
			} else if subs[k] != nil {
				elapsed += subs[k].Time
			}
		}
		if hooks != nil {
			hooks.WaveDone(wi, elapsed)
		}
		if failed {
			// Dependents of the failed node must not run; later waves are
			// abandoned wholesale (conservative, still deterministic).
			break
		}
	}
	for k := range p.nodes {
		if errs[k] != nil {
			return nil, errs[k]
		}
		if subs[k] != nil {
			rep.merge(subs[k])
		}
	}
	return rep, nil
}
