package accel

import (
	"testing"

	"mealib/internal/descriptor"
)

func TestArgsRoundTrips(t *testing.T) {
	axpy := AxpyArgs{N: 100, Alpha: 2.5, X: 0x1000, Y: 0x2000, IncX: 1, IncY: -2, LoopStrideX: Lin(400)}
	got, err := DecodeAxpyArgs(axpy.Params())
	if err != nil || got != axpy {
		t.Errorf("axpy round trip: %+v, %v", got, err)
	}

	dot := DotArgs{N: 32, Complex: true, X: 0x100, Y: 0x200, Out: 0x300, IncX: 1, IncY: 4, LoopStrideX: Lin(256), LoopStrideOut: Lin(8)}
	gd, err := DecodeDotArgs(dot.Params())
	if err != nil || gd != dot {
		t.Errorf("dot round trip: %+v, %v", gd, err)
	}

	gemv := GemvArgs{M: 16, N: 8, Alpha: 1, Beta: 0.5, A: 0x1000, Lda: 8, X: 0x2000, Y: 0x3000}
	gg, err := DecodeGemvArgs(gemv.Params())
	if err != nil || gg != gemv {
		t.Errorf("gemv round trip: %+v, %v", gg, err)
	}

	spmv := SpmvArgs{M: 5, Cols: 5, NNZ: 9, RowPtr: 1, ColIdx: 2, Values: 3, X: 4, Y: 5, Semiring: SpmvMinPlus, Bias: 2.5}
	gs, err := DecodeSpmvArgs(spmv.Params())
	if err != nil || gs != spmv {
		t.Errorf("spmv round trip: %+v, %v", gs, err)
	}

	resmp := ResmpArgs{NIn: 100, NOut: 200, Kind: 1, Src: 0x10, Dst: 0x20, LoopStrideSrc: Lin(400), LoopStrideDst: Lin(800)}
	gr, err := DecodeResmpArgs(resmp.Params())
	if err != nil || gr != resmp {
		t.Errorf("resmp round trip: %+v, %v", gr, err)
	}

	fft := FFTArgs{N: 64, Inverse: true, HowMany: 4, Src: 0x100, Dst: 0x100, LoopStrideSrc: Lin(2048), LoopStrideDst: Lin(2048)}
	gf, err := DecodeFFTArgs(fft.Params())
	if err != nil || gf != fft {
		t.Errorf("fft round trip: %+v, %v", gf, err)
	}

	reshp := ReshpArgs{Rows: 8, Cols: 16, Elem: ElemC64, Src: 0x1, Dst: 0x2}
	gp, err := DecodeReshpArgs(reshp.Params())
	if err != nil || gp != reshp {
		t.Errorf("reshp round trip: %+v, %v", gp, err)
	}
}

func TestDecodeWrongFieldCount(t *testing.T) {
	if _, err := DecodeAxpyArgs(descriptor.Params{1, 2}); err == nil {
		t.Error("short AXPY params must fail")
	}
	if _, err := DecodeDotArgs(descriptor.Params{1}); err == nil {
		t.Error("short DOT params must fail")
	}
	if _, err := DecodeGemvArgs(descriptor.Params{1}); err == nil {
		t.Error("short GEMV params must fail")
	}
	if _, err := DecodeSpmvArgs(descriptor.Params{1}); err == nil {
		t.Error("short SPMV params must fail")
	}
	if _, err := DecodeResmpArgs(descriptor.Params{1}); err == nil {
		t.Error("short RESMP params must fail")
	}
	if _, err := DecodeFFTArgs(descriptor.Params{1}); err == nil {
		t.Error("short FFT params must fail")
	}
	if _, err := DecodeReshpArgs(descriptor.Params{1}); err == nil {
		t.Error("short RESHP params must fail")
	}
}

func TestShiftAdvancesBuffers(t *testing.T) {
	a := AxpyArgs{X: 0x1000, Y: 0x2000, LoopStrideX: Lin(0x100), LoopStrideY: Lin(0x200)}
	s := a.shift(IterVec{0, 0, 0, 3})
	if s.X != 0x1300 || s.Y != 0x2600 {
		t.Errorf("shift(3) = %v/%v", s.X, s.Y)
	}
	d := DotArgs{X: 0x100, Y: 0x200, Out: 0x300, LoopStrideOut: Lin(8)}
	sd := d.shift(IterVec{0, 0, 0, 2})
	if sd.X != 0x100 || sd.Out != 0x310 {
		t.Errorf("dot shift = %+v", sd)
	}
}

func TestMultiLevelStrides(t *testing.T) {
	// A two-level nest: outer level strides a whole plane, inner a row.
	st := Strides{0, 0, 1024, 16}
	if got := st.Offset(IterVec{0, 0, 3, 5}); got != 3*1024+5*16 {
		t.Errorf("offset = %d", got)
	}
	a := DotArgs{X: 0x1000, LoopStrideX: st}
	if got := a.shift(IterVec{0, 0, 2, 1}).X; got != 0x1000+2*1024+16 {
		t.Errorf("multi-level shift = %v", got)
	}
}
