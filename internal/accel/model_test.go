package accel

import (
	"math"
	"testing"

	"mealib/internal/descriptor"
	"mealib/internal/phys"
	"mealib/internal/units"
)

// TestRunModelMatchesFunctionalRun pins the analytic path (RunModel) to the
// functional path (Run) for a descriptor exercising chaining and a loop:
// identical time, energy and activation accounting.
func TestRunModelMatchesFunctionalRun(t *testing.T) {
	r := newRig(t)
	n := 64
	elems := n * n
	src := make([]complex64, elems)
	src[0] = 1
	sa, ta := r.alloc(8*elems), r.alloc(8*elems)
	if err := r.space.StoreComplex64s(sa, src); err != nil {
		t.Fatal(err)
	}
	build := func(sa, ta phys.Addr) *descriptor.Descriptor {
		d := &descriptor.Descriptor{}
		_ = d.AddComp(descriptor.OpRESHP, ReshpArgs{
			Rows: int64(n), Cols: int64(n), Elem: ElemC64, Src: sa, Dst: ta,
		}.Params())
		_ = d.AddComp(descriptor.OpFFT, FFTArgs{
			N: int64(n), HowMany: int64(n), Src: ta, Dst: ta,
		}.Params())
		d.AddEndPass()
		_ = d.AddLoop(4, 2)
		_ = d.AddComp(descriptor.OpDOT, DotArgs{
			N: 16, Complex: true, X: ta, Y: ta, Out: sa, IncX: 1, IncY: 1,
			LoopStrideX: Lin(128), LoopStrideOut: Lin(8),
		}.Params())
		d.AddEndPass()
		d.AddEndLoop()
		return d
	}
	functional, err := r.layer.RunPlain(r.space, build(sa, ta), r.alloc(4096))
	if err != nil {
		t.Fatal(err)
	}
	model, err := r.layer.RunModel(build(sa, ta))
	if err != nil {
		t.Fatal(err)
	}
	relT := math.Abs(float64(functional.Time-model.Time)) / float64(functional.Time)
	if relT > 1e-9 {
		t.Errorf("model time %v vs functional %v", model.Time, functional.Time)
	}
	relE := math.Abs(float64(functional.Energy-model.Energy)) / float64(functional.Energy)
	if relE > 1e-9 {
		t.Errorf("model energy %v vs functional %v", model.Energy, functional.Energy)
	}
	if functional.Comps != model.Comps {
		t.Errorf("model comps %d vs functional %d", model.Comps, functional.Comps)
	}
	if functional.NoCBytes != model.NoCBytes {
		t.Errorf("model NoC %v vs functional %v", model.NoCBytes, functional.NoCBytes)
	}
	for op, fs := range functional.PerOp {
		ms := model.PerOp[op]
		if ms == nil || ms.Invocations != fs.Invocations || !units.CloseTo(float64(ms.Flops), float64(fs.Flops)) || ms.Bytes != fs.Bytes {
			t.Errorf("%v per-op stats diverge: functional %+v model %+v", op, fs, ms)
		}
	}
}

// TestRunModelScalesLoopsInConstantWork checks the O(1)-per-loop evaluation:
// a million-iteration loop must cost the same to *evaluate* as a one-
// iteration loop (the reported hardware time scales, the wall time doesn't).
func TestRunModelScalesLoopsInConstantWork(t *testing.T) {
	layer, err := NewLayer(MEALibConfig())
	if err != nil {
		t.Fatal(err)
	}
	build := func(iters uint32) *descriptor.Descriptor {
		d := &descriptor.Descriptor{}
		_ = d.AddLoop(iters)
		_ = d.AddComp(descriptor.OpDOT, DotArgs{
			N: 32, Complex: true, X: 0x1000, Y: 0x2000, Out: 0x3000, IncX: 1, IncY: 1,
			LoopStrideX: Lin(256),
		}.Params())
		d.AddEndPass()
		d.AddEndLoop()
		return d
	}
	small, err := layer.RunModel(build(1))
	if err != nil {
		t.Fatal(err)
	}
	big, err := layer.RunModel(build(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if big.Comps != int64(1<<20) {
		t.Errorf("comps = %d", big.Comps)
	}
	// Hardware time scales with the iteration count (modulo the fixed
	// per-pass configuration charge and the CU fetch/decode time).
	fixedSmall := layer.Config().PassConfigLatency + small.FetchDecodeTime
	fixedBig := layer.Config().PassConfigLatency + big.FetchDecodeTime
	perIterSmall := float64(small.Time - fixedSmall)
	perIterBig := float64(big.Time-fixedBig) / float64(1<<20)
	if math.Abs(perIterSmall-perIterBig)/perIterSmall > 1e-6 {
		t.Errorf("per-iteration time diverges: %g vs %g", perIterSmall, perIterBig)
	}
}

func TestRunModelValidates(t *testing.T) {
	layer, err := NewLayer(MEALibConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := &descriptor.Descriptor{}
	_ = d.AddComp(descriptor.OpAXPY, nil) // unterminated pass
	if _, err := layer.RunModel(d); err == nil {
		t.Error("invalid descriptor must fail")
	}
}

func TestOpRatesOverride(t *testing.T) {
	cfg := MEALibConfig()
	w := Work{Flops: 1e9} // pure compute
	fft, err := cfg.OpCost(descriptor.OpFFT, w)
	if err != nil {
		t.Fatal(err)
	}
	// FFT runs on the 2 TFLOPS hardwired datapath.
	want := units.Seconds(1e9 / 2000e9)
	if math.Abs(float64(fft.Time-want))/float64(want) > 1e-9 {
		t.Errorf("FFT compute time %v, want %v", fft.Time, want)
	}
	// RESHP has no override: the generic PE rate applies, but RESHP has no
	// flops in practice; use GEMV's override instead.
	gemv, err := cfg.OpCost(descriptor.OpGEMV, w)
	if err != nil {
		t.Fatal(err)
	}
	if gemv.Time <= fft.Time {
		t.Error("GEMV's 512 GFLOPS datapath must be slower than FFT's 2 TFLOPS")
	}
}

func TestConfigUnitCapacity(t *testing.T) {
	cu := DefaultConfigUnit()
	// A LOOP-compacted descriptor is tiny and always fits.
	small := &descriptor.Descriptor{}
	_ = small.AddLoop(1 << 24)
	_ = small.AddComp(descriptor.OpDOT, DotArgs{N: 32, IncX: 1, IncY: 1}.Params())
	small.AddEndPass()
	small.AddEndLoop()
	if err := cu.CheckCapacity(small); err != nil {
		t.Errorf("compacted descriptor must fit IMEM: %v", err)
	}
	// Thousands of individual COMP instructions eventually exceed the IMEM
	// — the hardware reason the compiler's LOOP compaction exists.
	big := &descriptor.Descriptor{}
	for i := 0; i < 4000; i++ {
		_ = big.AddComp(descriptor.OpDOT, DotArgs{N: 32, IncX: 1, IncY: 1}.Params())
		big.AddEndPass()
	}
	if err := cu.CheckCapacity(big); err == nil {
		t.Error("4000 individual comps must exceed the 64 KiB IMEM")
	}
	layer, err := NewLayer(MEALibConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := layer.RunModel(big); err == nil {
		t.Error("RunModel must enforce IMEM capacity")
	}
}

func TestConfigUnitFetchDecodeTime(t *testing.T) {
	cu := DefaultConfigUnit()
	if err := cu.Validate(); err != nil {
		t.Fatal(err)
	}
	d1 := &descriptor.Descriptor{}
	_ = d1.AddComp(descriptor.OpAXPY, AxpyArgs{N: 1, IncX: 1, IncY: 1}.Params())
	d1.AddEndPass()
	d2 := &descriptor.Descriptor{}
	for i := 0; i < 16; i++ {
		_ = d2.AddComp(descriptor.OpAXPY, AxpyArgs{N: 1, IncX: 1, IncY: 1}.Params())
		d2.AddEndPass()
	}
	if cu.FetchDecodeTime(d2) <= cu.FetchDecodeTime(d1) {
		t.Error("bigger descriptors must take longer to fetch and decode")
	}
	bad := ConfigUnit{}
	if err := bad.Validate(); err == nil {
		t.Error("zero config unit must fail validation")
	}
}

func TestChainingSpillsBeyondLocalMemory(t *testing.T) {
	layer, err := NewLayer(MEALibConfig())
	if err != nil {
		t.Fatal(err)
	}
	lmCap := layer.Config().LMBytes * units.Bytes(layer.Config().Tiles)
	// An intermediate far larger than the aggregate LM: most of it must
	// spill to DRAM.
	n := int64(lmCap) // complex64 elements -> 8x the LM capacity in bytes
	d := &descriptor.Descriptor{}
	_ = d.AddComp(descriptor.OpRESHP, ReshpArgs{Rows: 1, Cols: n, Elem: ElemC64, Src: 0x1000, Dst: 0x2000}.Params())
	_ = d.AddComp(descriptor.OpFFT, FFTArgs{N: 64, HowMany: n / 64, Src: 0x2000, Dst: 0x2000}.Params())
	d.AddEndPass()
	rep, err := layer.RunModel(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LMSpillBytes == 0 {
		t.Error("oversized intermediate must spill")
	}
	if rep.NoCBytes != lmCap {
		t.Errorf("chained bytes = %v, want LM capacity %v", rep.NoCBytes, lmCap)
	}
	wantSpill := units.Bytes(8*n) - lmCap
	if rep.LMSpillBytes != wantSpill {
		t.Errorf("spill = %v, want %v", rep.LMSpillBytes, wantSpill)
	}
}
