package accel

import (
	"errors"
	"fmt"
	"sort"

	"mealib/internal/descriptor"
	"mealib/internal/phys"
	"mealib/internal/units"
)

// Out-of-core plan lowering (ROADMAP "Out-of-core execution"): a descriptor
// whose operands live in the host-backed window — addresses no accelerator
// can reach — is split into a schedule of chunked launches whose window
// spans are relocated into a double-buffered staging region carved from
// stack memory. The split reuses the same span machinery the scheduler and
// fusion passes rely on for legality: every relocation is justified by the
// comp's own ioSpansOf extents, and a chunk's rebased descriptor is an
// ordinary descriptor the layer runs unmodified (fusion, wave scheduling
// and capacity checks included). The runtime (internal/mealibrt/ooc.go)
// drives the schedule: stage in, execute, write back, with the next chunk's
// stage-in prefetched under the current chunk's execution when legal.

// ErrUnchunkable marks a descriptor the chunker cannot split: a single
// invocation's window footprint exceeds the staging half and the op has no
// exact split (reductions like DOT, global-access ops like SPMV/RESHP, and
// boundary-coupled RESMP cannot be divided without changing results
// bit-for-bit). Growing the staging region is the only cure.
var ErrUnchunkable = errors.New("accel: descriptor cannot be chunked into the staging region")

// oocAlign is the staging-layout alignment of each relocated extent.
const oocAlign = 64

// oocMaxUnits bounds how many schedulable units (loop iterations × passes)
// the chunker will materialise; descriptors past it should use a bigger
// staging region rather than a million-entry schedule.
const oocMaxUnits = 1 << 20

// OOCExtent is one contiguous host-window byte range a chunk relocates into
// the staging region. Every extent is staged in before execution — even
// write-only ones, so stride gaps inside the extent carry the original host
// bytes back out unchanged — and extents the chunk writes are copied back
// after execution.
type OOCExtent struct {
	Host   phys.Addr
	Staged phys.Addr
	Bytes  units.Bytes
	// Out marks extents the chunk writes (copied back after execution).
	Out bool
}

// OOCChunk is one staged launch of the schedule.
type OOCChunk struct {
	// Desc is the rebased descriptor: the original comps of this chunk's
	// units with window addresses relocated into the staging half.
	Desc *descriptor.Descriptor
	// Extents are the relocations, sorted by host address.
	Extents []OOCExtent
	// Half selects which staging half the chunk occupies (ping-pong).
	Half int
	// Prefetchable reports that this chunk's stage-in touches no host range
	// the previous chunk writes back — so the stage-in may overlap the
	// previous chunk's execution and write-back.
	Prefetchable bool
	// StageInBytes and WriteBackBytes are the chunk's link traffic.
	StageInBytes, WriteBackBytes units.Bytes
}

// OOCSchedule is the chunked lowering of one out-of-core descriptor.
type OOCSchedule struct {
	Chunks []*OOCChunk
	// MaxDescBytes sizes the command-space slot the chunk descriptors are
	// encoded into (one slot, reused serially).
	MaxDescBytes units.Bytes
	// StageInBytes and WriteBackBytes total the link traffic.
	StageInBytes, WriteBackBytes units.Bytes
}

// StagingCost is the model time and energy of moving n bytes between host
// DRAM and the staging region over the host↔stack link (the same SerDes
// link remote-stack traffic crosses).
func (c *Config) StagingCost(n units.Bytes) (units.Seconds, units.Joules) {
	if n <= 0 || c.RemoteLinkBW <= 0 {
		return 0, 0
	}
	return c.RemoteLinkBW.Time(n), units.Joules(float64(n) * 8 * float64(c.ELinkBit))
}

// oocBox is one host-window byte range a unit touches, with write direction.
type oocBox struct {
	lo, hi uint64
	out    bool
}

// oocUnit is the smallest schedulable piece of the descriptor: one loop
// iteration's passes (params fully shifted to that iteration), or one
// top-level pass, or one split piece of an oversized comp.
type oocUnit struct {
	passes [][]passInstr
	boxes  []oocBox
}

// mergeBoxes normalises a box list: sorted by lo, overlapping or adjacent
// boxes merged (out flags OR — a merged extent is written if any part is).
func mergeBoxes(boxes []oocBox) []oocBox {
	if len(boxes) < 2 {
		return boxes
	}
	sort.Slice(boxes, func(i, j int) bool { return boxes[i].lo < boxes[j].lo })
	out := boxes[:1]
	for _, b := range boxes[1:] {
		cur := &out[len(out)-1]
		if b.lo <= cur.hi {
			if b.hi > cur.hi {
				cur.hi = b.hi
			}
			cur.out = cur.out || b.out
			continue
		}
		out = append(out, b)
	}
	return out
}

// layoutBytes is the staging footprint of a box list (each extent aligned).
func layoutBytes(boxes []oocBox) units.Bytes {
	var n units.Bytes
	for _, b := range boxes {
		n += (units.Bytes(b.hi-b.lo) + oocAlign - 1) / oocAlign * oocAlign
	}
	return n
}

// boxesOverlap reports whether any out-box of a overlaps any box of b.
func boxesOverlap(a, b []oocBox) bool {
	for _, x := range a {
		if !x.out {
			continue
		}
		for _, y := range b {
			if x.lo < y.hi && y.lo < x.hi {
				return true
			}
		}
	}
	return false
}

// shiftedParams folds the iteration vector into the comp's base addresses
// and zeroes the loop strides, producing the params of a standalone
// (top-level) pass equivalent to this iteration's invocation.
func shiftedParams(op descriptor.OpCode, p descriptor.Params, it IterVec) (descriptor.Params, error) {
	switch op {
	case descriptor.OpAXPY:
		a, err := DecodeAxpyArgs(p)
		if err != nil {
			return nil, err
		}
		a = a.shift(it)
		a.LoopStrideX, a.LoopStrideY = Strides{}, Strides{}
		return a.Params(), nil
	case descriptor.OpDOT:
		a, err := DecodeDotArgs(p)
		if err != nil {
			return nil, err
		}
		a = a.shift(it)
		a.LoopStrideX, a.LoopStrideY, a.LoopStrideOut = Strides{}, Strides{}, Strides{}
		return a.Params(), nil
	case descriptor.OpGEMV:
		a, err := DecodeGemvArgs(p)
		if err != nil {
			return nil, err
		}
		a = a.shift(it)
		a.LoopStrideA, a.LoopStrideX, a.LoopStrideY = Strides{}, Strides{}, Strides{}
		return a.Params(), nil
	case descriptor.OpRESMP:
		a, err := DecodeResmpArgs(p)
		if err != nil {
			return nil, err
		}
		a = a.shift(it)
		a.LoopStrideSrc, a.LoopStrideDst = Strides{}, Strides{}
		return a.Params(), nil
	case descriptor.OpFFT:
		a, err := DecodeFFTArgs(p)
		if err != nil {
			return nil, err
		}
		a = a.shift(it)
		a.LoopStrideSrc, a.LoopStrideDst = Strides{}, Strides{}
		return a.Params(), nil
	case descriptor.OpSPMV, descriptor.OpRESHP:
		// No loop strides: every iteration names the same addresses.
		return p, nil
	default:
		return nil, fmt.Errorf("accel: ooc: unknown op %v", op)
	}
}

// rebaseComp relocates a comp's window addresses via mapAddr. Each operand
// is mapped with its full span so the relocation is rejected unless the
// whole access lands inside one staged extent.
func rebaseComp(op descriptor.OpCode, p descriptor.Params, mapAddr func(phys.Addr, units.Bytes) (phys.Addr, error)) (descriptor.Params, error) {
	switch op {
	case descriptor.OpAXPY:
		a, err := DecodeAxpyArgs(p)
		if err != nil {
			return nil, err
		}
		if a.X, err = mapAddr(a.X, units.Bytes(4*span64(a.N, a.IncX))); err != nil {
			return nil, err
		}
		if a.Y, err = mapAddr(a.Y, units.Bytes(4*span64(a.N, a.IncY))); err != nil {
			return nil, err
		}
		return a.Params(), nil
	case descriptor.OpDOT:
		a, err := DecodeDotArgs(p)
		if err != nil {
			return nil, err
		}
		elem := int64(4)
		if a.Complex {
			elem = 8
		}
		if a.X, err = mapAddr(a.X, units.Bytes(elem*span64(a.N, a.IncX))); err != nil {
			return nil, err
		}
		if a.Y, err = mapAddr(a.Y, units.Bytes(elem*span64(a.N, a.IncY))); err != nil {
			return nil, err
		}
		if a.Out, err = mapAddr(a.Out, units.Bytes(elem)); err != nil {
			return nil, err
		}
		return a.Params(), nil
	case descriptor.OpGEMV:
		a, err := DecodeGemvArgs(p)
		if err != nil {
			return nil, err
		}
		matLen := int64(0)
		if a.M > 0 {
			matLen = (a.M-1)*a.Lda + a.N
		}
		if a.A, err = mapAddr(a.A, units.Bytes(4*matLen)); err != nil {
			return nil, err
		}
		if a.X, err = mapAddr(a.X, units.Bytes(4*a.N)); err != nil {
			return nil, err
		}
		if a.Y, err = mapAddr(a.Y, units.Bytes(4*a.M)); err != nil {
			return nil, err
		}
		return a.Params(), nil
	case descriptor.OpSPMV:
		a, err := DecodeSpmvArgs(p)
		if err != nil {
			return nil, err
		}
		if a.RowPtr, err = mapAddr(a.RowPtr, units.Bytes(4*(a.M+1))); err != nil {
			return nil, err
		}
		if a.ColIdx, err = mapAddr(a.ColIdx, units.Bytes(4*a.NNZ)); err != nil {
			return nil, err
		}
		if a.Values, err = mapAddr(a.Values, units.Bytes(4*a.NNZ)); err != nil {
			return nil, err
		}
		if a.X, err = mapAddr(a.X, units.Bytes(4*a.Cols)); err != nil {
			return nil, err
		}
		if a.Y, err = mapAddr(a.Y, units.Bytes(4*a.M)); err != nil {
			return nil, err
		}
		return a.Params(), nil
	case descriptor.OpRESMP:
		a, err := DecodeResmpArgs(p)
		if err != nil {
			return nil, err
		}
		elem := int64(4)
		if a.Kind >= ResmpComplex {
			elem = 8
		}
		if a.Src, err = mapAddr(a.Src, units.Bytes(elem*a.NIn)); err != nil {
			return nil, err
		}
		if a.Dst, err = mapAddr(a.Dst, units.Bytes(elem*a.NOut)); err != nil {
			return nil, err
		}
		return a.Params(), nil
	case descriptor.OpFFT:
		a, err := DecodeFFTArgs(p)
		if err != nil {
			return nil, err
		}
		total := units.Bytes(8 * a.N * a.HowMany)
		if a.Src, err = mapAddr(a.Src, total); err != nil {
			return nil, err
		}
		if a.Dst, err = mapAddr(a.Dst, total); err != nil {
			return nil, err
		}
		return a.Params(), nil
	case descriptor.OpRESHP:
		a, err := DecodeReshpArgs(p)
		if err != nil {
			return nil, err
		}
		elem := int64(4)
		if a.Elem == ElemC64 {
			elem = 8
		}
		n := units.Bytes(elem * a.Rows * a.Cols)
		if a.Src, err = mapAddr(a.Src, n); err != nil {
			return nil, err
		}
		if a.Dst, err = mapAddr(a.Dst, n); err != nil {
			return nil, err
		}
		return a.Params(), nil
	default:
		return nil, fmt.Errorf("accel: ooc: unknown op %v", op)
	}
}

// unitBoxes resolves the unit's window extents from its comps' directional
// spans at iteration zero (params are already shifted).
func unitBoxes(passes [][]passInstr, inWindow func(phys.Addr) bool) ([]oocBox, error) {
	var boxes []oocBox
	for _, pass := range passes {
		for _, pi := range pass {
			spans, err := ioSpansOf(pi.op, pi.params, IterVec{})
			if err != nil {
				return nil, err
			}
			if spans == nil {
				return nil, fmt.Errorf("accel: ooc: unresolvable spans for %v", pi.op)
			}
			for _, sp := range spans {
				if sp.bytes <= 0 || !inWindow(sp.addr) {
					continue
				}
				lo := uint64(sp.addr)
				hi := lo + uint64(sp.bytes)
				if hi < lo {
					return nil, fmt.Errorf("accel: ooc: address wrap at %v", sp.addr)
				}
				boxes = append(boxes, oocBox{lo: lo, hi: hi, out: sp.write})
			}
		}
	}
	return mergeBoxes(boxes), nil
}

// splitOversized divides a single-comp unit whose window footprint exceeds
// the budget into exact pieces. Only ops with elementwise-independent
// outputs split losslessly: AXPY by vector range, GEMV by row block, FFT by
// batch. Reductions and global-access ops return ErrUnchunkable.
func splitOversized(pi passInstr, unitBytes, budget units.Bytes) ([]descriptor.Params, error) {
	pieces := int64((unitBytes + budget - 1) / budget)
	if pieces < 2 {
		pieces = 2
	}
	switch pi.op {
	case descriptor.OpAXPY:
		a, err := DecodeAxpyArgs(pi.params)
		if err != nil {
			return nil, err
		}
		if a.IncX <= 0 || a.IncY <= 0 || a.N < pieces {
			return nil, fmt.Errorf("%w: AXPY with n=%d incx=%d incy=%d", ErrUnchunkable, a.N, a.IncX, a.IncY)
		}
		per := (a.N + pieces - 1) / pieces
		var out []descriptor.Params
		for start := int64(0); start < a.N; start += per {
			q := a
			q.N = min64(per, a.N-start)
			q.X += phys.Addr(4 * a.IncX * start)
			q.Y += phys.Addr(4 * a.IncY * start)
			out = append(out, q.Params())
		}
		return out, nil
	case descriptor.OpGEMV:
		a, err := DecodeGemvArgs(pi.params)
		if err != nil {
			return nil, err
		}
		if a.M < 2 || a.Lda < a.N {
			return nil, fmt.Errorf("%w: GEMV with m=%d lda=%d n=%d", ErrUnchunkable, a.M, a.Lda, a.N)
		}
		// Every piece re-reads the full x vector; rows amortise the rest.
		fixed := units.Bytes(4 * a.N)
		perRow := units.Bytes(4*a.Lda + 4)
		if fixed+perRow > budget {
			return nil, fmt.Errorf("%w: one GEMV row (%v) exceeds the staging budget %v", ErrUnchunkable, fixed+perRow, budget)
		}
		rows := int64((budget - fixed) / perRow)
		if rows < 1 {
			rows = 1
		}
		var out []descriptor.Params
		for start := int64(0); start < a.M; start += rows {
			q := a
			q.M = min64(rows, a.M-start)
			q.A += phys.Addr(4 * a.Lda * start)
			q.Y += phys.Addr(4 * start)
			out = append(out, q.Params())
		}
		return out, nil
	case descriptor.OpFFT:
		a, err := DecodeFFTArgs(pi.params)
		if err != nil {
			return nil, err
		}
		if a.HowMany < 2 {
			return nil, fmt.Errorf("%w: single %d-point FFT exceeds the staging budget", ErrUnchunkable, a.N)
		}
		perBatch := units.Bytes(16 * a.N) // src + dst
		if a.Dst == a.Src {
			perBatch = units.Bytes(8 * a.N)
		}
		if perBatch > budget {
			return nil, fmt.Errorf("%w: one %d-point FFT batch (%v) exceeds the staging budget %v", ErrUnchunkable, a.N, perBatch, budget)
		}
		batches := int64(budget / perBatch)
		if batches < 1 {
			batches = 1
		}
		var out []descriptor.Params
		for start := int64(0); start < a.HowMany; start += batches {
			q := a
			q.HowMany = min64(batches, a.HowMany-start)
			q.Src += phys.Addr(8 * a.N * start)
			q.Dst += phys.Addr(8 * a.N * start)
			out = append(out, q.Params())
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: %v invocation footprint exceeds the staging half and the op has no exact split", ErrUnchunkable, pi.op)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// oocUnitsOf decomposes the descriptor into schedulable units: every loop
// iteration becomes a standalone unit with fully shifted params, every
// top-level pass a unit of its own, and oversized single-comp units are
// split into exact pieces that fit the budget.
func oocUnitsOf(d *descriptor.Descriptor, inWindow func(phys.Addr) bool, budget units.Bytes) ([]oocUnit, error) {
	segs, err := segmentsOf(d)
	if err != nil {
		return nil, err
	}
	var raw []oocUnit
	for _, seg := range segs {
		if !seg.loop {
			for _, pass := range seg.passes {
				raw = append(raw, oocUnit{passes: [][]passInstr{pass}})
			}
			continue
		}
		iters := seg.counts.Total()
		if int64(len(raw))+iters > oocMaxUnits {
			return nil, fmt.Errorf("%w: %d loop iterations exceed the chunker's %d-unit bound (grow the staging region)", ErrUnchunkable, iters, oocMaxUnits)
		}
		for idx := int64(0); idx < iters; idx++ {
			it := iterVecAt(seg.counts, idx)
			passes := make([][]passInstr, 0, len(seg.passes))
			for _, pass := range seg.passes {
				shifted := make([]passInstr, len(pass))
				for i, pi := range pass {
					p, err := shiftedParams(pi.op, pi.params, it)
					if err != nil {
						return nil, err
					}
					shifted[i] = passInstr{op: pi.op, params: p}
				}
				passes = append(passes, shifted)
			}
			raw = append(raw, oocUnit{passes: passes})
		}
	}
	// Resolve window extents, splitting units the staging half cannot hold.
	var out []oocUnit
	for _, u := range raw {
		boxes, err := unitBoxes(u.passes, inWindow)
		if err != nil {
			return nil, err
		}
		if layoutBytes(boxes) <= budget {
			u.boxes = boxes
			out = append(out, u)
			continue
		}
		if len(u.passes) != 1 || len(u.passes[0]) != 1 {
			return nil, fmt.Errorf("%w: a chained pass's footprint (%v) exceeds the staging half (%v)", ErrUnchunkable, layoutBytes(boxes), budget)
		}
		pieces, err := splitOversized(u.passes[0][0], layoutBytes(boxes), budget/2)
		if err != nil {
			return nil, err
		}
		for _, p := range pieces {
			pu := oocUnit{passes: [][]passInstr{{{op: u.passes[0][0].op, params: p}}}}
			if pu.boxes, err = unitBoxes(pu.passes, inWindow); err != nil {
				return nil, err
			}
			if layoutBytes(pu.boxes) > budget {
				return nil, fmt.Errorf("%w: split piece still exceeds the staging half", ErrUnchunkable)
			}
			out = append(out, pu)
		}
	}
	return out, nil
}

// descBytesOf estimates the encoded size of a chunk's passes (CR + IR + PR,
// matching descriptor.Size's accounting).
func descBytesOf(passes [][]passInstr) units.Bytes {
	n := units.Bytes(32) // control region
	for _, pass := range passes {
		n += 32 // ENDPASS instruction
		for _, pi := range pass {
			n += 32 + units.Bytes(4+8*len(pi.params))
		}
	}
	return n
}

// PlanOOC lowers an out-of-core descriptor into a chunked schedule over the
// double-buffered staging region: halves[0] and halves[1] are the two
// staging bases, halfBytes the capacity of each. inWindow classifies
// physical addresses as host-backed. The chunk descriptors are complete,
// verified-shape descriptors over staging (and untouched resident)
// addresses only.
func (l *Layer) PlanOOC(d *descriptor.Descriptor, inWindow func(phys.Addr) bool, halves [2]phys.Addr, halfBytes units.Bytes) (*OOCSchedule, error) {
	if halfBytes <= 0 {
		return nil, fmt.Errorf("accel: ooc: no staging region configured")
	}
	units_, err := oocUnitsOf(d, inWindow, halfBytes)
	if err != nil {
		return nil, err
	}
	// Greedy grouping: pack units into a chunk while the merged extent
	// layout fits the staging half and the flat descriptor fits the
	// instruction memory.
	imem := l.cfg.CU.IMEMBytes
	var groups [][]oocUnit
	var cur []oocUnit
	var curBoxes []oocBox
	var curDesc units.Bytes = 32
	flush := func() {
		if len(cur) > 0 {
			groups = append(groups, cur)
			cur, curBoxes, curDesc = nil, nil, 32
		}
	}
	for _, u := range units_ {
		tentative := mergeBoxes(append(append([]oocBox(nil), curBoxes...), u.boxes...))
		uDesc := descBytesOf(u.passes)
		if len(cur) > 0 && (layoutBytes(tentative) > halfBytes || curDesc+uDesc > imem) {
			flush()
			tentative = mergeBoxes(append([]oocBox(nil), u.boxes...))
		}
		cur = append(cur, u)
		curBoxes = tentative
		curDesc += uDesc
	}
	flush()

	sched := &OOCSchedule{}
	var prevBoxes []oocBox
	for gi, group := range groups {
		var boxes []oocBox
		for _, u := range group {
			boxes = append(boxes, u.boxes...)
		}
		boxes = mergeBoxes(boxes)
		ch := &OOCChunk{Half: gi % 2}
		// Lay the extents out in the chunk's staging half.
		staged := halves[ch.Half]
		for _, b := range boxes {
			n := units.Bytes(b.hi - b.lo)
			ch.Extents = append(ch.Extents, OOCExtent{Host: phys.Addr(b.lo), Staged: staged, Bytes: n, Out: b.out})
			staged += phys.Addr((n + oocAlign - 1) / oocAlign * oocAlign)
			ch.StageInBytes += n
			if b.out {
				ch.WriteBackBytes += n
			}
		}
		mapAddr := func(a phys.Addr, n units.Bytes) (phys.Addr, error) {
			if !inWindow(a) {
				return a, nil
			}
			i := sort.Search(len(ch.Extents), func(i int) bool {
				return ch.Extents[i].Host+phys.Addr(ch.Extents[i].Bytes) > a
			})
			if i < len(ch.Extents) && a >= ch.Extents[i].Host && a+phys.Addr(n) <= ch.Extents[i].Host+phys.Addr(ch.Extents[i].Bytes) {
				return ch.Extents[i].Staged + (a - ch.Extents[i].Host), nil
			}
			if n == 0 {
				return a, nil // zero-length operand: never accessed
			}
			return 0, fmt.Errorf("accel: ooc: window access %v+%v lands outside every staged extent", a, n)
		}
		cd := &descriptor.Descriptor{}
		for _, u := range group {
			for _, pass := range u.passes {
				for _, pi := range pass {
					p, err := rebaseComp(pi.op, pi.params, mapAddr)
					if err != nil {
						return nil, err
					}
					if err := cd.AddComp(pi.op, p); err != nil {
						return nil, err
					}
				}
				cd.AddEndPass()
			}
		}
		if err := cd.Validate(); err != nil {
			return nil, fmt.Errorf("accel: ooc: chunk %d: %w", gi, err)
		}
		if err := l.cfg.CU.CheckCapacity(cd); err != nil {
			return nil, fmt.Errorf("accel: ooc: chunk %d: %w", gi, err)
		}
		ch.Desc = cd
		// The stage-in may run under the previous chunk's execution and
		// write-back only when it reads nothing the previous chunk writes.
		ch.Prefetchable = gi > 0 && !boxesOverlap(prevBoxes, boxes)
		if cd.Size() > sched.MaxDescBytes {
			sched.MaxDescBytes = cd.Size()
		}
		sched.StageInBytes += ch.StageInBytes
		sched.WriteBackBytes += ch.WriteBackBytes
		sched.Chunks = append(sched.Chunks, ch)
		prevBoxes = boxes
	}
	return sched, nil
}
