package accel

import (
	"fmt"

	"mealib/internal/descriptor"
	"mealib/internal/units"
)

// ConfigUnit models the centralized configuration unit of the accelerator
// layer (paper Figure 5): the Fetch Unit that transfers the accelerator
// descriptor from the command space into the Instruction Memory over the
// TSVs, and the Decode Unit that parses it pass by pass, configures the
// switch logic of each tile, and initiates processing.
type ConfigUnit struct {
	// IMEMBytes is the instruction-memory capacity. The fetch unit
	// transfers the *entire* descriptor (paper §2.2), so CR+IR+PR must fit.
	IMEMBytes units.Bytes
	// FetchBandwidth is the descriptor transfer rate from DRAM over the
	// TSV bus (a single vault's worth of bandwidth).
	FetchBandwidth units.BytesPerSec
	// DecodeLatency is the per-instruction decode cost of the DU.
	DecodeLatency units.Seconds
}

// DefaultConfigUnit sizes the CU for the MEALib layer: a 64 KiB IMEM (large
// enough for thousands of instructions, small enough for the layer's area
// budget) fed at one vault's bandwidth.
func DefaultConfigUnit() ConfigUnit {
	return ConfigUnit{
		IMEMBytes:      64 * units.KiB,
		FetchBandwidth: units.GBps(510.0 / 16.0),
		DecodeLatency:  8 * units.Nanosecond, // a few cycles at 1 GHz
	}
}

// Validate reports configuration errors.
func (cu ConfigUnit) Validate() error {
	if cu.IMEMBytes <= 0 || cu.FetchBandwidth <= 0 {
		return fmt.Errorf("accel: config unit needs positive IMEM and fetch bandwidth")
	}
	return nil
}

// CheckCapacity verifies the descriptor fits the instruction memory — the
// hardware limit on how much work one invocation can describe. (LOOP
// blocks exist precisely so that millions of calls fit in a handful of
// instructions.)
func (cu ConfigUnit) CheckCapacity(d *descriptor.Descriptor) error {
	if size := d.Size(); size > cu.IMEMBytes {
		return fmt.Errorf("accel: descriptor (%v) exceeds instruction memory (%v); split the work or use LOOP compaction", size, cu.IMEMBytes)
	}
	return nil
}

// FetchDecodeTime returns the fetch-unit transfer time plus the decode-unit
// parse time for the descriptor.
func (cu ConfigUnit) FetchDecodeTime(d *descriptor.Descriptor) units.Seconds {
	fetch := cu.FetchBandwidth.Time(d.Size())
	decode := cu.DecodeLatency * units.Seconds(len(d.Instrs))
	return fetch + decode
}
