package accel

import (
	"fmt"
	"sync"
)

// LinkController models the arbitration of paper §2.1: "The link controller
// arbitrates ownership of the DRAM between the CPU and the memory-side
// accelerators. We assume that the CPU and memory-side accelerators do not
// operate on the DRAM simultaneously... when the data is processed by
// accelerators, the accesses from the CPU are blocked by the link
// controller."
//
// The runtime acquires the controller for the accelerators around every
// descriptor execution; host-side buffer accesses consult HostMayAccess.
// Because the simulation executes synchronously this is primarily a
// correctness guard (a host access during accelerator ownership is a
// programming error the real hardware would stall, and this model reports),
// but it also gives the coherence story of §3.5 its missing half: the
// wbinvd happens before ownership transfers, and ownership transfers back
// only when the accelerators are done.
type LinkController struct {
	mu    sync.Mutex
	owner linkOwner
	// holds counts concurrent accelerator-side holders (shared
	// acquisition): ownership returns to the host when the last in-flight
	// descriptor releases.
	holds int64
	// transfers counts ownership handovers (diagnostics).
	transfers int64
}

type linkOwner int

// Link ownership states.
const (
	ownerHost linkOwner = iota
	ownerAccelerators
)

// AcquireForAccelerators transfers exclusive DRAM ownership to the
// accelerator side. It fails if the accelerators already own the link
// (nested exclusive acquisition means a runtime bug: use AcquireShared for
// concurrent in-flight descriptors).
func (lc *LinkController) AcquireForAccelerators() error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.owner == ownerAccelerators {
		return fmt.Errorf("accel: link controller already owned by accelerators")
	}
	lc.owner = ownerAccelerators
	lc.holds = 1
	lc.transfers++
	return nil
}

// ReleaseToHost returns ownership to the host.
func (lc *LinkController) ReleaseToHost() error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.owner != ownerAccelerators {
		return fmt.Errorf("accel: link controller not owned by accelerators")
	}
	lc.owner = ownerHost
	lc.holds = 0
	lc.transfers++
	return nil
}

// AcquireShared takes (or joins) accelerator-side ownership for one
// in-flight descriptor. The first holder transfers ownership away from the
// host; further holders pile on. The span-conflict admission in the
// runtime guarantees concurrent holders touch disjoint data.
func (lc *LinkController) AcquireShared() {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.holds == 0 {
		lc.owner = ownerAccelerators
		lc.transfers++
	}
	lc.holds++
}

// ReleaseShared drops one shared hold; the last release hands ownership
// back to the host.
func (lc *LinkController) ReleaseShared() error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.owner != ownerAccelerators || lc.holds == 0 {
		return fmt.Errorf("accel: link controller not owned by accelerators")
	}
	lc.holds--
	if lc.holds == 0 {
		lc.owner = ownerHost
		lc.transfers++
	}
	return nil
}

// HostMayAccess reports whether host DRAM accesses are currently allowed.
func (lc *LinkController) HostMayAccess() bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.owner == ownerHost
}

// Transfers returns the number of ownership handovers.
func (lc *LinkController) Transfers() int64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.transfers
}
