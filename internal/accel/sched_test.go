package accel

import (
	"testing"

	"mealib/internal/descriptor"
)

// Analytic-path differentials: RunModel on a serial (Workers=1) layer and a
// scheduled (Workers=4) layer must produce bit-identical reports — the
// wavefront scheduler may reorder evaluation but never results. RunModel
// touches no memory, so no space is needed.

func newModelLayer(t *testing.T, workers int) *Layer {
	t.Helper()
	cfg := MEALibConfig()
	cfg.Workers = workers
	l, err := NewLayer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func runModelDifferential(t *testing.T, d *descriptor.Descriptor) {
	t.Helper()
	serial, err := newModelLayer(t, 1).RunModel(d)
	if err != nil {
		t.Fatal(err)
	}
	scheduled, err := newModelLayer(t, 4).RunModel(d)
	if err != nil {
		t.Fatal(err)
	}
	requireReportsIdentical(t, serial, scheduled)
}

// TestModelDifferentialAllOpcodes drives every accelerator opcode through
// the analytic path, plain and looped.
func TestModelDifferentialAllOpcodes(t *testing.T) {
	cases := []struct {
		name string
		add  func(d *descriptor.Descriptor) error
	}{
		{"AXPY", func(d *descriptor.Descriptor) error {
			return d.AddComp(descriptor.OpAXPY, AxpyArgs{
				N: 4096, Alpha: 2, X: 0x10000, Y: 0x80000, IncX: 1, IncY: 1,
				LoopStrideX: Lin(16384), LoopStrideY: Lin(16384),
			}.Params())
		}},
		{"DOT", func(d *descriptor.Descriptor) error {
			return d.AddComp(descriptor.OpDOT, DotArgs{
				N: 4096, X: 0x10000, Y: 0x80000, Out: 0xf0000, IncX: 1, IncY: 1,
				LoopStrideX: Lin(16384), LoopStrideOut: Lin(4),
			}.Params())
		}},
		{"GEMV", func(d *descriptor.Descriptor) error {
			return d.AddComp(descriptor.OpGEMV, GemvArgs{
				M: 64, N: 64, Alpha: 1, Beta: 0.5, A: 0x10000, Lda: 64,
				X: 0x80000, Y: 0xf0000,
				LoopStrideA: Lin(4 * 64 * 64), LoopStrideY: Lin(4 * 64),
			}.Params())
		}},
		{"SPMV", func(d *descriptor.Descriptor) error {
			return d.AddComp(descriptor.OpSPMV, SpmvArgs{
				M: 64, Cols: 64, NNZ: 256,
				RowPtr: 0x10000, ColIdx: 0x20000, Values: 0x30000,
				X: 0x80000, Y: 0xf0000,
			}.Params())
		}},
		{"RESMP", func(d *descriptor.Descriptor) error {
			return d.AddComp(descriptor.OpRESMP, ResmpArgs{
				NIn: 256, NOut: 384, Kind: 1, Src: 0x10000, Dst: 0x80000,
				LoopStrideSrc: Lin(4 * 256), LoopStrideDst: Lin(4 * 384),
			}.Params())
		}},
		{"FFT", func(d *descriptor.Descriptor) error {
			return d.AddComp(descriptor.OpFFT, FFTArgs{
				N: 512, HowMany: 1, Src: 0x10000, Dst: 0x10000,
				LoopStrideSrc: Lin(8 * 512), LoopStrideDst: Lin(8 * 512),
			}.Params())
		}},
		{"RESHP", func(d *descriptor.Descriptor) error {
			return d.AddComp(descriptor.OpRESHP, ReshpArgs{
				Rows: 64, Cols: 32, Elem: ElemF32, Src: 0x10000, Dst: 0x80000,
			}.Params())
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := &descriptor.Descriptor{}
			if err := c.add(d); err != nil {
				t.Fatal(err)
			}
			d.AddEndPass()
			runModelDifferential(t, d)

			looped := &descriptor.Descriptor{}
			if err := looped.AddLoop(12); err != nil {
				t.Fatal(err)
			}
			if err := c.add(looped); err != nil {
				t.Fatal(err)
			}
			looped.AddEndPass()
			looped.AddEndLoop()
			runModelDifferential(t, looped)
		})
	}
}

// TestModelDifferentialChainedPasses chains two accelerators in one pass
// inside a loop (the SAR image-formation shape).
func TestModelDifferentialChainedPasses(t *testing.T) {
	d := &descriptor.Descriptor{}
	if err := d.AddLoop(16); err != nil {
		t.Fatal(err)
	}
	if err := d.AddComp(descriptor.OpRESMP, ResmpArgs{
		NIn: 192, NOut: 256, Kind: ResmpComplex, Src: 0x10000, Dst: 0x80000,
		LoopStrideSrc: Lin(8 * 192), LoopStrideDst: Lin(8 * 256),
	}.Params()); err != nil {
		t.Fatal(err)
	}
	if err := d.AddComp(descriptor.OpFFT, FFTArgs{
		N: 256, HowMany: 1, Src: 0x80000, Dst: 0x80000,
		LoopStrideSrc: Lin(8 * 256), LoopStrideDst: Lin(8 * 256),
	}.Params()); err != nil {
		t.Fatal(err)
	}
	d.AddEndPass()
	d.AddEndLoop()
	runModelDifferential(t, d)
}

// TestModelDifferentialSTAPShape mirrors the STAP pipeline of Figure 13:
// Doppler FFTs across channels, covariance GEMVs per range gate, a detector
// DOT, and a weight-application AXPY loop — four program sections with
// different loop structures in one descriptor.
func TestModelDifferentialSTAPShape(t *testing.T) {
	d := &descriptor.Descriptor{}
	if err := d.AddLoop(32); err != nil {
		t.Fatal(err)
	}
	if err := d.AddComp(descriptor.OpFFT, FFTArgs{
		N: 128, HowMany: 1, Src: 0x10000, Dst: 0x10000,
		LoopStrideSrc: Lin(8 * 128), LoopStrideDst: Lin(8 * 128),
	}.Params()); err != nil {
		t.Fatal(err)
	}
	d.AddEndPass()
	d.AddEndLoop()
	if err := d.AddLoop(16); err != nil {
		t.Fatal(err)
	}
	if err := d.AddComp(descriptor.OpGEMV, GemvArgs{
		M: 32, N: 32, Alpha: 1, Beta: 0, A: 0x10000, Lda: 32,
		X: 0x200000, Y: 0x300000,
		LoopStrideA: Lin(4 * 32 * 32), LoopStrideY: Lin(4 * 32),
	}.Params()); err != nil {
		t.Fatal(err)
	}
	d.AddEndPass()
	d.AddEndLoop()
	if err := d.AddComp(descriptor.OpDOT, DotArgs{
		N: 512, X: 0x300000, Y: 0x200000, Out: 0x400000, IncX: 1, IncY: 1,
	}.Params()); err != nil {
		t.Fatal(err)
	}
	d.AddEndPass()
	if err := d.AddLoop(64); err != nil {
		t.Fatal(err)
	}
	if err := d.AddComp(descriptor.OpAXPY, AxpyArgs{
		N: 256, Alpha: -1, X: 0x500000, Y: 0x600000, IncX: 1, IncY: 1,
		LoopStrideX: Lin(4 * 256), LoopStrideY: Lin(4 * 256),
	}.Params()); err != nil {
		t.Fatal(err)
	}
	d.AddEndPass()
	d.AddEndLoop()
	runModelDifferential(t, d)
}

// TestModelDifferentialSARShape mirrors the SAR image formation pipeline:
// range interpolation chained into range FFTs, a corner-turn RESHP, then
// azimuth FFTs.
func TestModelDifferentialSARShape(t *testing.T) {
	d := &descriptor.Descriptor{}
	if err := d.AddLoop(24); err != nil {
		t.Fatal(err)
	}
	if err := d.AddComp(descriptor.OpRESMP, ResmpArgs{
		NIn: 160, NOut: 256, Kind: ResmpComplex, Src: 0x10000, Dst: 0x200000,
		LoopStrideSrc: Lin(8 * 160), LoopStrideDst: Lin(8 * 256),
	}.Params()); err != nil {
		t.Fatal(err)
	}
	if err := d.AddComp(descriptor.OpFFT, FFTArgs{
		N: 256, HowMany: 1, Src: 0x200000, Dst: 0x200000,
		LoopStrideSrc: Lin(8 * 256), LoopStrideDst: Lin(8 * 256),
	}.Params()); err != nil {
		t.Fatal(err)
	}
	d.AddEndPass()
	d.AddEndLoop()
	if err := d.AddComp(descriptor.OpRESHP, ReshpArgs{
		Rows: 24, Cols: 256, Elem: ElemC64, Src: 0x200000, Dst: 0x400000,
	}.Params()); err != nil {
		t.Fatal(err)
	}
	d.AddEndPass()
	if err := d.AddLoop(256); err != nil {
		t.Fatal(err)
	}
	if err := d.AddComp(descriptor.OpFFT, FFTArgs{
		N: 24, HowMany: 1, Src: 0x400000, Dst: 0x400000,
		LoopStrideSrc: Lin(8 * 24), LoopStrideDst: Lin(8 * 24),
	}.Params()); err != nil {
		t.Fatal(err)
	}
	d.AddEndPass()
	d.AddEndLoop()
	runModelDifferential(t, d)
}

// TestPlanInterleavesSerialChainWithIndependentLoop pins the wavefront win
// over the old per-loop parallelism: a looped SPMV is a serial chain (every
// iteration rewrites y), and under the old interpreter its loop fully
// serialised the descriptor. In the plan IR the chain only orders its own
// nodes, so an unrelated strided AXPY loop rides in the same waves.
func TestPlanInterleavesSerialChainWithIndependentLoop(t *testing.T) {
	const spmvIters, axpyIters = 6, 8
	l := newModelLayer(t, 4)
	d := &descriptor.Descriptor{}
	if err := d.AddLoop(spmvIters); err != nil {
		t.Fatal(err)
	}
	if err := d.AddComp(descriptor.OpSPMV, SpmvArgs{
		M: 64, Cols: 64, NNZ: 256,
		RowPtr: 0x10000, ColIdx: 0x20000, Values: 0x30000,
		X: 0x80000, Y: 0xf0000, // no loop strides: all iterations rewrite y
	}.Params()); err != nil {
		t.Fatal(err)
	}
	d.AddEndPass()
	d.AddEndLoop()
	if err := d.AddLoop(axpyIters); err != nil {
		t.Fatal(err)
	}
	if err := d.AddComp(descriptor.OpAXPY, AxpyArgs{
		N: 1024, Alpha: 3, X: 0x200000, Y: 0x300000, IncX: 1, IncY: 1,
		LoopStrideX: Lin(4096), LoopStrideY: Lin(4096),
	}.Params()); err != nil {
		t.Fatal(err)
	}
	d.AddEndPass()
	d.AddEndLoop()

	p, err := l.buildPlan(d, planExpand)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("plan unexpectedly overflowed into the streaming fallback")
	}
	if got := len(p.nodes); got != spmvIters+axpyIters {
		t.Fatalf("nodes = %d, want %d", got, spmvIters+axpyIters)
	}
	// The SPMV chain sets the wave count; the AXPY nodes all land in wave 0.
	if got := len(p.waves); got != spmvIters {
		t.Errorf("waves = %d, want %d (the SPMV chain depth)", got, spmvIters)
	}
	var spmvN, axpyN int
	for _, k := range p.waves[0] {
		switch p.nodes[k].pass[0].op {
		case descriptor.OpSPMV:
			spmvN++
		case descriptor.OpAXPY:
			axpyN++
		}
	}
	if spmvN != 1 || axpyN != axpyIters {
		t.Errorf("wave 0 holds %d SPMV + %d AXPY nodes, want 1 + %d", spmvN, axpyN, axpyIters)
	}
	if p.maxWidth <= 1 {
		t.Errorf("maxWidth = %d: the previously-serialised case must expose parallelism", p.maxWidth)
	}

	info, err := l.ExplainPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != spmvIters+axpyIters || info.Waves != spmvIters || info.MaxWidth != 1+axpyIters {
		t.Errorf("ExplainPlan = %+v, want %d nodes, %d waves, width %d",
			info, spmvIters+axpyIters, spmvIters, 1+axpyIters)
	}
	if info.SerialChain {
		t.Error("plan must not degrade to a serial chain")
	}
}

// TestExplainPlanSerialChainAlone: the same SPMV loop by itself stays a
// pure chain — one node per wave.
func TestExplainPlanSerialChainAlone(t *testing.T) {
	const iters = 5
	l := newModelLayer(t, 4)
	d := &descriptor.Descriptor{}
	if err := d.AddLoop(iters); err != nil {
		t.Fatal(err)
	}
	if err := d.AddComp(descriptor.OpSPMV, SpmvArgs{
		M: 64, Cols: 64, NNZ: 256,
		RowPtr: 0x10000, ColIdx: 0x20000, Values: 0x30000,
		X: 0x80000, Y: 0xf0000,
	}.Params()); err != nil {
		t.Fatal(err)
	}
	d.AddEndPass()
	d.AddEndLoop()
	info, err := l.ExplainPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != iters || info.Waves != iters || info.MaxWidth != 1 {
		t.Errorf("ExplainPlan = %+v, want a %d-deep chain of width 1", info, iters)
	}
}
