package accel

import (
	"mealib/internal/descriptor"
	"mealib/internal/units"
)

// Execution-plan IR: a decoded descriptor is lowered into a DAG of op
// nodes before anything runs. One node is one pass instance — a PASS
// datapath at one loop iteration (chaining couples the comps of a pass, so
// a pass is the smallest unit the hardware schedules as a whole). Edges are
// read-after-write, write-after-read and write-after-write span
// intersections, derived from the same affine base + Σ stride·index
// arithmetic the decode unit performs (ioSpansOf). The functional and the
// analytic interpreters both lower to this IR and execute it with the one
// wavefront scheduler in sched.go; the analytic path collapses each LOOP
// to a representative iteration carrying a scale factor, so paper-scale
// trip counts stay O(1) to evaluate.

// planMaxNodes bounds the functional expansion: beyond it the interpreter
// falls back to the streaming loop executor instead of materialising the
// DAG (a million-iteration LOOP would cost hundreds of megabytes of nodes
// for no scheduling insight the streaming path lacks).
const planMaxNodes = 1 << 16

// planMaxEvents bounds the spans the edge builder materialises; past it
// the plan degrades to a serial chain (every node depends on its
// predecessor), which is always correct.
const planMaxEvents = indepMaxEvents

// planNode is one schedulable unit: one pass instance.
type planNode struct {
	pass []passInstr
	it   IterVec
	// scale multiplies the node's sub-report (model-collapsed loops: the
	// node stands for scale identical iterations). 1 on the functional path.
	scale int64
	// dispatch charges the per-iteration decode-unit dispatch latency
	// (set on the last pass of each loop iteration).
	dispatch bool
	// spans are the node's directional byte spans; nil means they could
	// not be resolved and the node is a barrier (conflicts with everything).
	spans []ioSpan
	// deps are the nodes that must complete first (always earlier in
	// program order, so the DAG is acyclic by construction).
	deps []int32
	wave int32
}

// plan is the lowered descriptor.
type plan struct {
	nodes []planNode
	// fixed is the schedule-independent time: pass-configuration latency
	// (accelerators in a LOOP body are configured once, paper §2.2) and
	// the dispatch charges of empty loop bodies.
	fixed units.Seconds
	// waves groups node indices by wave number; every node's deps live in
	// strictly earlier waves.
	waves [][]int32
	// maxWidth is the widest wave.
	maxWidth int
	// edges counts dependence edges (introspection).
	edges int
	// chained reports that the edge builder gave up (span blow-up) and the
	// plan degraded to a serial chain.
	chained bool
	// fused records the fusion groups applied while lowering (nil when
	// fusion is off or nothing fused).
	fused []FusedGroup
	// fusionSpills counts fusible pairs left unfused because the handoff
	// would overflow the tile-local memories (spill-to-DRAM fallback).
	fusionSpills int
	// scratchBytes is the peak per-iteration tile-local scratch any fused
	// pass holds its intermediates in.
	scratchBytes units.Bytes
}

// planMode selects how LOOP nests lower.
type planMode int

const (
	// planExpand materialises one node per pass per iteration (functional
	// execution: every iteration really runs).
	planExpand planMode = iota
	// planCollapse keeps one node per loop-body pass, scaled by the trip
	// count (analytic execution: every iteration has identical cost).
	planCollapse
)

// planNodeCount pre-counts the nodes mode would materialise.
func planNodeCount(d *descriptor.Descriptor, mode planMode) int64 {
	var total int64
	bodyPasses := int64(0)
	inLoop := false
	var counts descriptor.LoopCounts
	for _, in := range d.Instrs {
		switch in.Kind {
		case descriptor.KindEndPass:
			if inLoop {
				bodyPasses++
			} else {
				total++
			}
		case descriptor.KindLoop:
			inLoop = true
			counts = in.Counts
			bodyPasses = 0
		case descriptor.KindEndLoop:
			if mode == planCollapse {
				total += bodyPasses
			} else {
				total += bodyPasses * counts.Total()
			}
			inLoop = false
		}
	}
	return total
}

// buildPlan lowers the descriptor. It returns nil (no error) when the
// expansion would exceed planMaxNodes and the caller should stream instead.
//
// Lowering first decodes the descriptor into scope segments, runs the
// fusion pass over them (unless Config.NoFusion), then emits nodes from the
// possibly-merged pass lists. A fused pass is one node — its comps chain
// through tile-local memory inside runPass — so the interleaving DRAM
// write/read passes between producer and consumer disappear from the
// schedule itself, not just the cost model.
func (l *Layer) buildPlan(d *descriptor.Descriptor, mode planMode) (*plan, error) {
	if planNodeCount(d, mode) > planMaxNodes {
		return nil, nil
	}
	segs, err := segmentsOf(d)
	if err != nil {
		return nil, err
	}
	p := &plan{}
	if !l.cfg.NoFusion {
		res := fuseSegments(segs, l.cfg.LMBytes*units.Bytes(l.cfg.Tiles))
		p.fused = res.groups
		p.fusionSpills = res.spills
		p.scratchBytes = res.scratch
	}
	for _, seg := range segs {
		if !seg.loop {
			for _, pass := range seg.passes {
				p.fixed += l.cfg.PassConfigLatency
				p.addNode(pass, IterVec{}, 1, false)
			}
			continue
		}
		iters := seg.counts.Total()
		p.fixed += l.cfg.PassConfigLatency * units.Seconds(len(seg.passes))
		switch {
		case len(seg.passes) == 0:
			// An empty loop body still pays the per-iteration dispatch.
			p.fixed += l.iterDispatch() * units.Seconds(iters)
		case mode == planCollapse:
			for pi, body := range seg.passes {
				p.addNode(body, IterVec{}, iters, pi == len(seg.passes)-1)
			}
		default:
			for idx := int64(0); idx < iters; idx++ {
				it := iterVecAt(seg.counts, idx)
				for pi, body := range seg.passes {
					p.addNode(body, it, 1, pi == len(seg.passes)-1)
				}
			}
		}
	}
	p.buildEdges()
	p.buildWaves()
	return p, nil
}

// addNode appends a node, resolving its directional spans. Any span that
// fails to resolve (undecodable comp, address wrap) turns the node into a
// barrier (nil spans).
func (p *plan) addNode(pass []passInstr, it IterVec, scale int64, dispatch bool) {
	nd := planNode{pass: pass, it: it, scale: scale, dispatch: dispatch}
	for _, pi := range pass {
		spans, err := ioSpansOf(pi.op, pi.params, it)
		if err != nil || spans == nil {
			nd.spans = nil
			p.nodes = append(p.nodes, nd)
			return
		}
		for _, sp := range spans {
			if sp.bytes <= 0 {
				continue
			}
			if uint64(sp.addr)+uint64(sp.bytes) < uint64(sp.addr) { // wrap
				nd.spans = nil
				p.nodes = append(p.nodes, nd)
				return
			}
			nd.spans = append(nd.spans, sp)
		}
	}
	if nd.spans == nil {
		// Resolvable but span-free (every operand empty, e.g. N=0): the
		// node touches no memory, so it conflicts with nothing. Keep a
		// non-nil empty slice so it is not mistaken for a barrier.
		nd.spans = []ioSpan{}
	}
	p.nodes = append(p.nodes, nd)
}

// serialChain wires every node to its predecessor — the always-correct
// degenerate schedule.
func (p *plan) serialChain() {
	p.chained = true
	p.edges = 0
	for k := range p.nodes {
		if k == 0 {
			p.nodes[k].deps = nil
			continue
		}
		p.nodes[k].deps = []int32{int32(k - 1)}
		p.edges++
	}
}

// scoreIvl is one interval of the dependence scoreboard: the byte range
// [start, end) with the last node that wrote it and the nodes that read it
// since that write.
type scoreIvl struct {
	start, end uint64
	writer     int32 // -1: never written
	readers    []int32
}

// scoreboard sweeps nodes in program order and derives dependence edges.
// It keeps a sorted, disjoint interval list; intervals split at span
// boundaries, so the edge set is exact (no false dependences from
// coarsening) while staying linear in the number of distinct boundaries.
type scoreboard struct {
	ivls  []scoreIvl
	stamp []int32 // dedup: stamp[dep] == node+1 when already recorded
}

// ensure splits/creates intervals so [start, end) is covered exactly by
// ivls[i:j] and returns that range.
func (sb *scoreboard) ensure(start, end uint64) (int, int) {
	// Find the first interval ending after start.
	lo, hi := 0, len(sb.ivls)
	for lo < hi {
		mid := (lo + hi) / 2
		if sb.ivls[mid].end <= start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	// Split a straddling head.
	if i < len(sb.ivls) && sb.ivls[i].start < start {
		head := sb.ivls[i]
		left := head
		left.end = start
		sb.ivls[i].start = start
		sb.ivls[i].readers = append([]int32(nil), head.readers...)
		sb.ivls = append(sb.ivls, scoreIvl{})
		copy(sb.ivls[i+1:], sb.ivls[i:])
		sb.ivls[i] = left
		i++
	}
	// Walk forward, filling gaps and splitting the tail.
	j := i
	at := start
	for at < end {
		if j == len(sb.ivls) || sb.ivls[j].start >= end {
			// Gap to the end of the request.
			gapEnd := end
			if j < len(sb.ivls) && sb.ivls[j].start < gapEnd {
				gapEnd = sb.ivls[j].start
			}
			sb.ivls = append(sb.ivls, scoreIvl{})
			copy(sb.ivls[j+1:], sb.ivls[j:])
			sb.ivls[j] = scoreIvl{start: at, end: gapEnd, writer: -1}
			at = gapEnd
			j++
			continue
		}
		if sb.ivls[j].start > at {
			// Gap before the next interval.
			sb.ivls = append(sb.ivls, scoreIvl{})
			copy(sb.ivls[j+1:], sb.ivls[j:])
			sb.ivls[j] = scoreIvl{start: at, end: sb.ivls[j+1].start, writer: -1}
			at = sb.ivls[j].end
			j++
			continue
		}
		if sb.ivls[j].end > end {
			// Split the tail.
			tail := sb.ivls[j]
			right := tail
			right.start = end
			right.readers = append([]int32(nil), tail.readers...)
			sb.ivls[j].end = end
			sb.ivls = append(sb.ivls, scoreIvl{})
			copy(sb.ivls[j+2:], sb.ivls[j+1:])
			sb.ivls[j+1] = right
		}
		at = sb.ivls[j].end
		j++
	}
	return i, j
}

// addDep records dep -> node (dedup via stamps, no self-edges).
func (sb *scoreboard) addDep(p *plan, node int32, dep int32) {
	if dep == node || dep < 0 {
		return
	}
	if sb.stamp[dep] == node+1 {
		return
	}
	sb.stamp[dep] = node + 1
	p.nodes[node].deps = append(p.nodes[node].deps, dep)
	p.edges++
}

// barrier makes node depend on every node still visible in the scoreboard
// and collapses the board to a single all-covering interval owned by node.
func (sb *scoreboard) barrier(p *plan, node int32) {
	for k := range sb.ivls {
		sb.addDep(p, node, sb.ivls[k].writer)
		for _, r := range sb.ivls[k].readers {
			sb.addDep(p, node, r)
		}
	}
	sb.ivls = sb.ivls[:0]
	sb.ivls = append(sb.ivls, scoreIvl{start: 0, end: ^uint64(0), writer: node})
}

// buildEdges derives RAW/WAR/WAW edges by sweeping the nodes in program
// order. Every conflicting pair ends up ordered (directly or transitively),
// so any schedule respecting the edges reads and writes memory exactly as
// the serial program order would.
func (p *plan) buildEdges() {
	events := 0
	for k := range p.nodes {
		if p.nodes[k].spans == nil {
			events++ // barriers are cheap but count them anyway
			continue
		}
		events += len(p.nodes[k].spans)
	}
	if events > planMaxEvents {
		p.serialChain()
		return
	}
	sb := &scoreboard{stamp: make([]int32, len(p.nodes))}
	for k := range p.nodes {
		node := int32(k)
		nd := &p.nodes[k]
		if nd.spans == nil {
			sb.barrier(p, node)
			continue
		}
		for _, sp := range nd.spans {
			start := uint64(sp.addr)
			end := start + uint64(sp.bytes)
			i, j := sb.ensure(start, end)
			for v := i; v < j; v++ {
				ivl := &sb.ivls[v]
				// A read depends on the last writer; a write additionally
				// depends on every reader since that write.
				sb.addDep(p, node, ivl.writer)
				if sp.write {
					for _, r := range ivl.readers {
						sb.addDep(p, node, r)
					}
					ivl.writer = node
					ivl.readers = nil
				} else if ivl.writer != node {
					if n := len(ivl.readers); n == 0 || ivl.readers[n-1] != node {
						ivl.readers = append(ivl.readers, node)
					}
				}
			}
			if len(sb.ivls) > 2*planMaxEvents {
				p.serialChain()
				return
			}
		}
	}
}

// buildWaves assigns each node the earliest wave after all its deps and
// groups the nodes by wave.
func (p *plan) buildWaves() {
	maxWave := int32(-1)
	for k := range p.nodes {
		w := int32(0)
		for _, dep := range p.nodes[k].deps {
			if dw := p.nodes[dep].wave + 1; dw > w {
				w = dw
			}
		}
		p.nodes[k].wave = w
		if w > maxWave {
			maxWave = w
		}
	}
	if maxWave < 0 {
		return
	}
	p.waves = make([][]int32, maxWave+1)
	for k := range p.nodes {
		w := p.nodes[k].wave
		p.waves[w] = append(p.waves[w], int32(k))
	}
	for _, wave := range p.waves {
		if len(wave) > p.maxWidth {
			p.maxWidth = len(wave)
		}
	}
}

// PlanInfo summarises the scheduled shape of a descriptor: how many nodes
// the plan IR lowered it to, how they spread over topological waves, and
// how wide the widest wave is (the available parallelism).
type PlanInfo struct {
	// Nodes is the number of pass instances in the DAG.
	Nodes int
	// Edges is the number of dependence edges.
	Edges int
	// Waves is the schedule depth (the critical path in passes).
	Waves int
	// MaxWidth is the widest wave — how many pass instances can run
	// concurrently at the widest point.
	MaxWidth int
	// SerialChain reports that dependence analysis was abandoned and the
	// plan degraded to one-node-per-wave serial execution.
	SerialChain bool
	// Fused lists the fusion groups the lowering applied: runs of adjacent
	// producer→consumer passes merged into single chained passes whose
	// intermediates stay in tile-local scratch.
	Fused []FusedGroup
	// FusionSpills counts fusible pairs left unfused because their handoff
	// would overflow tile-local capacity (spilled to DRAM instead).
	FusionSpills int
	// ScratchBytes is the peak per-iteration tile-local scratch residency
	// of any fused pass.
	ScratchBytes units.Bytes
}

// ExplainPlan lowers a descriptor through the functional expansion and
// reports its scheduled shape without executing it (scheduler
// introspection; also useful for sizing Workers).
func (l *Layer) ExplainPlan(d *descriptor.Descriptor) (PlanInfo, error) {
	if err := d.Validate(); err != nil {
		return PlanInfo{}, err
	}
	p, err := l.buildPlan(d, planExpand)
	if err != nil {
		return PlanInfo{}, err
	}
	if p == nil {
		// Oversized expansion: the streaming executor takes over; report
		// the degenerate shape.
		return PlanInfo{Nodes: int(planNodeCount(d, planExpand)), SerialChain: true}, nil
	}
	return PlanInfo{
		Nodes:        len(p.nodes),
		Edges:        p.edges,
		Waves:        len(p.waves),
		MaxWidth:     p.maxWidth,
		SerialChain:  p.chained,
		Fused:        p.fused,
		FusionSpills: p.fusionSpills,
		ScratchBytes: p.scratchBytes,
	}, nil
}
