package accel

import (
	"testing"

	"mealib/internal/descriptor"
	"mealib/internal/kernels"
	"mealib/internal/phys"
	"mealib/internal/units"
)

func TestSpansOfCoversAllOps(t *testing.T) {
	cases := []struct {
		name  string
		op    descriptor.OpCode
		p     descriptor.Params
		bufs  int
		bytes units.Bytes
	}{
		{"axpy", descriptor.OpAXPY,
			AxpyArgs{N: 100, X: 0x1000, Y: 0x2000, IncX: 1, IncY: 1}.Params(),
			2, 400 + 800},
		{"dot-real", descriptor.OpDOT,
			DotArgs{N: 100, X: 0x1000, Y: 0x2000, Out: 0x3000, IncX: 1, IncY: 1}.Params(),
			3, 400 + 400 + 4},
		{"dot-complex", descriptor.OpDOT,
			DotArgs{N: 100, Complex: true, X: 0x1000, Y: 0x2000, Out: 0x3000, IncX: 1, IncY: 2}.Params(),
			3, 800 + 8*199 + 8},
		{"gemv", descriptor.OpGEMV,
			GemvArgs{M: 4, N: 8, A: 0x1000, Lda: 8, X: 0x2000, Y: 0x3000}.Params(),
			3, 4*32 + 32 + 32},
		{"spmv", descriptor.OpSPMV,
			SpmvArgs{M: 10, Cols: 10, NNZ: 30, RowPtr: 1, ColIdx: 2, Values: 3, X: 4, Y: 5}.Params(),
			5, 44 + 120 + 120 + 120 + 40},
		{"resmp-f32", descriptor.OpRESMP,
			ResmpArgs{NIn: 10, NOut: 20, Kind: 0, Src: 0x1000, Dst: 0x2000}.Params(),
			2, 40 + 80},
		{"resmp-c64", descriptor.OpRESMP,
			ResmpArgs{NIn: 10, NOut: 20, Kind: ResmpComplex, Src: 0x1000, Dst: 0x2000}.Params(),
			2, 80 + 160},
		{"fft-inplace", descriptor.OpFFT,
			FFTArgs{N: 16, HowMany: 2, Src: 0x1000, Dst: 0x1000}.Params(),
			1, 2 * 8 * 32},
		{"fft-outofplace", descriptor.OpFFT,
			FFTArgs{N: 16, HowMany: 2, Src: 0x1000, Dst: 0x2000}.Params(),
			2, 2 * 8 * 32},
		{"reshp", descriptor.OpRESHP,
			ReshpArgs{Rows: 4, Cols: 4, Elem: ElemC64, Src: 0x1000, Dst: 0x2000}.Params(),
			2, 2 * 8 * 16},
	}
	for _, c := range cases {
		spans, err := spansOf(c.op, c.p)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(spans) != c.bufs {
			t.Errorf("%s: %d spans, want %d", c.name, len(spans), c.bufs)
		}
		var total units.Bytes
		for _, s := range spans {
			total += s.Bytes
		}
		if total != c.bytes {
			t.Errorf("%s: %v bytes, want %v", c.name, total, c.bytes)
		}
	}
	if _, err := spansOf(descriptor.OpAXPY, descriptor.Params{1}); err == nil {
		t.Error("short params must fail")
	}
}

func TestRemoteBytesClassification(t *testing.T) {
	cfg := MEALibConfig()
	// Addresses below 0x8000_0000 are stack 0 (home); above, stack 1.
	cfg.StackOf = func(a phys.Addr) int {
		if a < 0x8000_0000 {
			return 0
		}
		return 1
	}
	cfg.HomeStack = 0
	local := AxpyArgs{N: 1000, X: 0x1000, Y: 0x2000, IncX: 1, IncY: 1}.Params()
	if remote, err := cfg.remoteBytes(descriptor.OpAXPY, local); err != nil || remote != 0 {
		t.Errorf("local buffers: remote = %v, %v", remote, err)
	}
	mixed := AxpyArgs{N: 1000, X: 0x9000_0000, Y: 0x2000, IncX: 1, IncY: 1}.Params()
	remote, err := cfg.remoteBytes(descriptor.OpAXPY, mixed)
	if err != nil {
		t.Fatal(err)
	}
	if remote != 4000 {
		t.Errorf("remote x: %v bytes, want 4000", remote)
	}
	// Without a stack map everything is local.
	cfg.StackOf = nil
	if remote, _ := cfg.remoteBytes(descriptor.OpAXPY, mixed); remote != 0 {
		t.Errorf("nil StackOf must classify nothing as remote, got %v", remote)
	}
}

func TestRemotePenaltyShape(t *testing.T) {
	cfg := MEALibConfig()
	t0, e0 := cfg.remotePenalty(0)
	if t0 != 0 || e0 != 0 {
		t.Error("zero remote traffic must be free")
	}
	t1, e1 := cfg.remotePenalty(1 * units.MiB)
	t2, e2 := cfg.remotePenalty(2 * units.MiB)
	if t1 <= 0 || e1 <= 0 {
		t.Fatal("remote traffic must cost something")
	}
	if t2 <= t1 || e2 <= e1 {
		t.Error("penalty must grow with traffic")
	}
	// The penalty is the link/TSV differential: well below the raw link time.
	if t1 >= cfg.RemoteLinkBW.Time(1*units.MiB) {
		t.Error("penalty must subtract the local streaming time")
	}
	// No link bandwidth configured: no penalty model.
	cfg.RemoteLinkBW = 0
	if tt, _ := cfg.remotePenalty(units.MiB); tt != 0 {
		t.Error("zero link bandwidth must disable the penalty")
	}
}

func TestCoreErrorPaths(t *testing.T) {
	r := newRig(t)
	cases := []struct {
		name string
		op   descriptor.OpCode
		p    descriptor.Params
	}{
		{"axpy negative n", descriptor.OpAXPY, AxpyArgs{N: -1, IncX: 1, IncY: 1}.Params()},
		{"dot negative n", descriptor.OpDOT, DotArgs{N: -5, IncX: 1, IncY: 1}.Params()},
		{"gemv bad lda", descriptor.OpGEMV, GemvArgs{M: 2, N: 4, Lda: 2}.Params()},
		{"spmv negative", descriptor.OpSPMV, SpmvArgs{M: -1}.Params()},
		{"resmp too short", descriptor.OpRESMP, ResmpArgs{NIn: 1, NOut: 4}.Params()},
		{"resmp bad kind", descriptor.OpRESMP, ResmpArgs{NIn: 8, NOut: 4, Kind: 9, Src: 0x10000, Dst: 0x10000}.Params()},
		{"fft zero batch", descriptor.OpFFT, FFTArgs{N: 8, HowMany: 0}.Params()},
		{"reshp negative", descriptor.OpRESHP, ReshpArgs{Rows: -1, Cols: 4}.Params()},
		{"reshp bad elem", descriptor.OpRESHP, ReshpArgs{Rows: 2, Cols: 2, Elem: 9, Src: 0x10000, Dst: 0x10000}.Params()},
	}
	for _, c := range cases {
		if _, err := execute(r.space, c.op, c.p, IterVec{}); err == nil {
			t.Errorf("%s: must fail", c.name)
		}
	}
}

func TestResmpComplexCore(t *testing.T) {
	r := newRig(t)
	src := []complex64{0, 2 + 2i, 4 + 4i, 6 + 6i}
	sa, da := r.alloc(32), r.alloc(64)
	if err := r.space.StoreComplex64s(sa, src); err != nil {
		t.Fatal(err)
	}
	w, err := execute(r.space, descriptor.OpRESMP, ResmpArgs{
		NIn: 4, NOut: 7, Kind: ResmpComplex + int64(kernels.InterpLinear), Src: sa, Dst: da,
	}.Params(), IterVec{})
	if err != nil {
		t.Fatal(err)
	}
	if w.InStream != 32 || w.OutStream != 56 {
		t.Errorf("complex resample traffic: %+v", w)
	}
	got, err := r.space.LoadComplex64s(da, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := complex(float32(i), float32(i))
		if v != want {
			t.Errorf("out[%d] = %v, want %v", i, v, want)
		}
	}
}
