package accel

import (
	"fmt"

	"mealib/internal/descriptor"
	"mealib/internal/kernels"
	"mealib/internal/units"
)

// WorkOf computes the workload profile of an invocation without executing
// it — the same formulas the functional cores report, evaluated from the
// parameters alone. The experiment harness uses this for paper-scale
// problem sizes where functionally transforming gigabytes per sweep point
// would be pointless; tests pin WorkOf against the functional cores.
func WorkOf(op descriptor.OpCode, p descriptor.Params) (Work, error) {
	switch op {
	case descriptor.OpAXPY:
		a, err := DecodeAxpyArgs(p)
		if err != nil {
			return Work{}, err
		}
		return Work{
			Flops:     kernels.SaxpyFlops(int(a.N)),
			InStream:  units.Bytes(4 * (span(a.N, a.IncX) + span(a.N, a.IncY))),
			OutStream: units.Bytes(4 * span(a.N, a.IncY)),
		}, nil
	case descriptor.OpDOT:
		a, err := DecodeDotArgs(p)
		if err != nil {
			return Work{}, err
		}
		if a.Complex {
			return Work{
				Flops:     kernels.CdotcFlops(int(a.N)),
				InStream:  units.Bytes(8 * (span(a.N, a.IncX) + span(a.N, a.IncY))),
				OutStream: 8,
			}, nil
		}
		return Work{
			Flops:     kernels.SdotFlops(int(a.N)),
			InStream:  units.Bytes(4 * (span(a.N, a.IncX) + span(a.N, a.IncY))),
			OutStream: 4,
		}, nil
	case descriptor.OpGEMV:
		a, err := DecodeGemvArgs(p)
		if err != nil {
			return Work{}, err
		}
		matLen := int64(0)
		if a.M > 0 {
			matLen = (a.M-1)*a.Lda + a.N
		}
		return Work{
			Flops:     kernels.SgemvFlops(int(a.M), int(a.N)),
			InStream:  units.Bytes(4 * (matLen + a.N + a.M)),
			OutStream: units.Bytes(4 * a.M),
		}, nil
	case descriptor.OpSPMV:
		a, err := DecodeSpmvArgs(p)
		if err != nil {
			return Work{}, err
		}
		return Work{
			Flops:     kernels.SpmvFlops(int(a.NNZ)),
			InStream:  units.Bytes(4 * (2*a.NNZ + a.M + 1)),
			OutStream: units.Bytes(4 * a.M),
			Random:    units.Bytes(4 * a.NNZ),
		}, nil
	case descriptor.OpRESMP:
		a, err := DecodeResmpArgs(p)
		if err != nil {
			return Work{}, err
		}
		if a.Kind >= ResmpComplex {
			return Work{
				Flops:     2 * kernels.ResampleFlops(int(a.NOut)),
				InStream:  units.Bytes(8 * a.NIn),
				OutStream: units.Bytes(8 * a.NOut),
			}, nil
		}
		return Work{
			Flops:     kernels.ResampleFlops(int(a.NOut)),
			InStream:  units.Bytes(4 * a.NIn),
			OutStream: units.Bytes(4 * a.NOut),
		}, nil
	case descriptor.OpFFT:
		a, err := DecodeFFTArgs(p)
		if err != nil {
			return Work{}, err
		}
		total := a.N * a.HowMany
		return Work{
			Flops:     units.Flops(float64(a.HowMany)) * kernels.FFTFlops(int(a.N)),
			InStream:  units.Bytes(8 * total),
			OutStream: units.Bytes(8 * total),
		}, nil
	case descriptor.OpRESHP:
		a, err := DecodeReshpArgs(p)
		if err != nil {
			return Work{}, err
		}
		elem := int64(4)
		if a.Elem == ElemC64 {
			elem = 8
		}
		n := a.Rows * a.Cols
		return Work{
			InStream:  units.Bytes(elem * n),
			OutStream: units.Bytes(elem * n),
		}, nil
	default:
		return Work{}, fmt.Errorf("accel: no work model for opcode %v", op)
	}
}
