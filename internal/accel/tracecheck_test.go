package accel

import (
	"math/rand"
	"testing"

	"mealib/internal/dram"
	"mealib/internal/phys"
	"mealib/internal/trace"
	"mealib/internal/units"
)

// TestAnalyticBandwidthMatchesTraceSimulation closes the loop on the
// paper's Figure 8 methodology: the accelerators' analytic cost model
// (StreamBandwidth) must agree with the trace-driven DRAM simulator when
// the same access stream is replayed through it.
func TestAnalyticBandwidthMatchesTraceSimulation(t *testing.T) {
	cfg := MEALibConfig()
	sim, err := dram.NewSimulator(cfg.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	// The AXPY access pattern: two read streams and one write stream,
	// interleaved as the accelerator issues them. The y stream is staggered
	// by a few DRAM rows so the buffers do not sit on identical banks.
	n := units.Bytes(4 << 20)
	rowSpan := cfg.DRAM.RowBytes * units.Bytes(cfg.DRAM.Channels)
	yBase := phys.Addr(0x4000_0000 + 3*rowSpan)
	x := trace.Stream(0x0000_0000, n, cfg.DRAM.BlockBytes, false)
	yr := trace.Stream(yBase, n, cfg.DRAM.BlockBytes, false)
	yw := trace.Stream(yBase, n, cfg.DRAM.BlockBytes, true)
	st := sim.Run(trace.Interleave(x, yr, yw))

	analytic := cfg.StreamBandwidth().GBs()
	simulated := st.Bandwidth().GBs()
	rel := (simulated - analytic) / analytic
	if rel < -0.20 || rel > 0.20 {
		t.Errorf("trace-driven bandwidth %.1f GB/s vs analytic %.1f GB/s (%.0f%% apart)",
			simulated, analytic, 100*rel)
	}
}

// TestAnalyticRandomBandwidthMatchesTrace does the same for the
// latency-bound gather model behind SPMV.
func TestAnalyticRandomBandwidthMatchesTrace(t *testing.T) {
	cfg := MEALibConfig()
	sim, err := dram.NewSimulator(cfg.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	// Gather pattern: pseudo-random addresses spread over banks and vaults,
	// every access a row miss — the regime RandomBandwidth models.
	rng := rand.New(rand.NewSource(3))
	indices := make([]int32, 1<<15)
	for i := range indices {
		indices[i] = rng.Int31n(1 << 24)
	}
	tr := trace.Gather(0, indices, cfg.DRAM.AccessBytes, false)
	st := sim.Run(tr)
	analytic := cfg.RandomBandwidth().GBs()
	simulated := st.Bandwidth().GBs()
	rel := (simulated - analytic) / analytic
	if rel < -0.3 || rel > 0.3 {
		t.Errorf("trace-driven random bandwidth %.1f GB/s vs analytic %.1f GB/s (%.0f%% apart)",
			simulated, analytic, 100*rel)
	}
	if st.RowHitRate() > 0.01 {
		t.Errorf("gather pattern should miss every row, hit rate %.2f", st.RowHitRate())
	}
}

// TestSingleBankStrideCollapses documents a real DRAM pathology the
// simulator reproduces: a power-of-two stride that maps every access to the
// same vault and bank serialises on that bank's row cycle, collapsing
// throughput to a tiny fraction of peak. (The out-of-order controller hides
// conflicts between *different* banks, but not a single-bank chain.)
func TestSingleBankStrideCollapses(t *testing.T) {
	cfg := MEALibConfig().DRAM
	sim, err := dram.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stride of 64 KiB: channel = block%16 and bank = row%8 are constant.
	tr := trace.Strided(0, 1<<13, 64*units.KiB, cfg.AccessBytes, false)
	st := sim.Run(tr)
	collapsed := st.Bandwidth().GBs()
	// One bank: one access per ~row cycle.
	tRC := float64(cfg.TRAS + cfg.TRP + cfg.TRCD + cfg.TCL)
	expected := float64(cfg.AccessBytes) / tRC / 1e9
	if collapsed > 3*expected || collapsed < expected/3 {
		t.Errorf("single-bank stride: %.2f GB/s, expected ~%.2f (one row cycle per access)",
			collapsed, expected)
	}
	if st.RowHitRate() != 0 {
		t.Errorf("every strided access must miss, hit rate %.2f", st.RowHitRate())
	}
	if collapsed > 0.05*cfg.PeakBandwidth().GBs() {
		t.Errorf("pathological stride reaches %.1f GB/s, should be far below the %.0f GB/s peak",
			collapsed, cfg.PeakBandwidth().GBs())
	}
}
