package accel

import (
	"testing"

	"mealib/internal/descriptor"
	"mealib/internal/kernels"
	"mealib/internal/phys"
)

// TestWorkOfMatchesFunctionalCores pins the analytic work model to what the
// functional cores actually report, for every accelerator.
func TestWorkOfMatchesFunctionalCores(t *testing.T) {
	r := newRig(t)
	n := 64

	// Prepare buffers big enough for all ops.
	fa := r.alloc(4 * n * n)
	fb := r.alloc(8 * n * n)
	fc := r.alloc(8 * n * n)
	_ = r.space.StoreFloat32s(fa, make([]float32, n*n))
	_ = r.space.StoreComplex64s(fb, make([]complex64, n*n))
	_ = r.space.StoreComplex64s(fc, make([]complex64, n*n))

	rowPtr := make([]int32, n+1)
	colIdx := make([]int32, 2*n)
	values := make([]float32, 2*n)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = int32(2 * (i + 1))
		colIdx[2*i] = int32(i)
		colIdx[2*i+1] = int32((i + 1) % n)
		values[2*i] = 1
		values[2*i+1] = 2
	}
	rpa, cia, va := r.alloc(4*(n+1)), r.alloc(8*n), r.alloc(8*n)
	_ = r.space.StoreInt32s(rpa, rowPtr)
	_ = r.space.StoreInt32s(cia, colIdx)
	_ = r.space.StoreFloat32s(va, values)

	cases := []struct {
		name string
		op   descriptor.OpCode
		p    descriptor.Params
	}{
		{"axpy", descriptor.OpAXPY, AxpyArgs{N: int64(n), Alpha: 1, X: fa, Y: fa + phys.Addr(4*n), IncX: 1, IncY: 1}.Params()},
		{"sdot", descriptor.OpDOT, DotArgs{N: int64(n), X: fa, Y: fa + phys.Addr(4*n), Out: fa + phys.Addr(8*n), IncX: 1, IncY: 1}.Params()},
		{"cdotc", descriptor.OpDOT, DotArgs{N: int64(n), Complex: true, X: fb, Y: fb + phys.Addr(8*n), Out: fb + phys.Addr(16*n), IncX: 1, IncY: 1}.Params()},
		{"gemv", descriptor.OpGEMV, GemvArgs{M: 8, N: 8, Alpha: 1, Beta: 0, A: fa, Lda: 8, X: fa + phys.Addr(4*64), Y: fa + phys.Addr(4*128)}.Params()},
		{"spmv", descriptor.OpSPMV, SpmvArgs{M: int64(n), Cols: int64(n), NNZ: int64(2 * n), RowPtr: rpa, ColIdx: cia, Values: va, X: fa, Y: fa + phys.Addr(4*n)}.Params()},
		{"resmp", descriptor.OpRESMP, ResmpArgs{NIn: int64(n), NOut: int64(2 * n), Kind: int64(kernels.InterpLinear), Src: fa, Dst: fa + phys.Addr(4*n)}.Params()},
		{"fft", descriptor.OpFFT, FFTArgs{N: int64(n), HowMany: 2, Src: fb, Dst: fb}.Params()},
		{"reshp-f32", descriptor.OpRESHP, ReshpArgs{Rows: 8, Cols: 8, Elem: ElemF32, Src: fa, Dst: fa + phys.Addr(4*64)}.Params()},
		{"reshp-c64", descriptor.OpRESHP, ReshpArgs{Rows: 8, Cols: 8, Elem: ElemC64, Src: fb, Dst: fc}.Params()},
	}
	for _, c := range cases {
		analytic, err := WorkOf(c.op, c.p)
		if err != nil {
			t.Errorf("%s: WorkOf: %v", c.name, err)
			continue
		}
		functional, err := execute(r.space, c.op, c.p, IterVec{})
		if err != nil {
			t.Errorf("%s: execute: %v", c.name, err)
			continue
		}
		if analytic != functional {
			t.Errorf("%s: WorkOf %+v != functional %+v", c.name, analytic, functional)
		}
	}
}

func TestWorkOfErrors(t *testing.T) {
	if _, err := WorkOf(descriptor.OpInvalid, nil); err == nil {
		t.Error("invalid opcode must fail")
	}
	if _, err := WorkOf(descriptor.OpAXPY, descriptor.Params{1}); err == nil {
		t.Error("short params must fail")
	}
}
