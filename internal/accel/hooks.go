package accel

import (
	"mealib/internal/phys"
	"mealib/internal/units"
)

// Wave-granularity execution hooks. A launch normally runs opaque to the
// runtime: admission serialises whole conflicting descriptors because the
// only progress signal is completion. WaveHooks opens the wavefront
// scheduler up to an external observer at wave granularity, so a dependent
// launch can start its first waves as the producer's last waves drain
// instead of waiting for the whole descriptor to retire — the runtime's
// wave-pipelining gate (internal/mealibrt) is the one consumer.

// WaveSpan is one directional byte range a wave touches.
type WaveSpan struct {
	Addr  phys.Addr
	Bytes units.Bytes
	Write bool
}

// WaveHooks observes and gates the wavefront execution of one launch.
// Methods are called from scheduler goroutines; implementations must be
// concurrency-safe. A nil WaveHooks disables the machinery at zero cost.
type WaveHooks interface {
	// Lowered announces the launch's schedule before execution: one
	// directional span list per topological wave, in execution order. A nil
	// element means that wave's footprint could not be resolved (it must be
	// treated as touching everything). A nil waves slice means the launch
	// bypassed the plan IR entirely (streaming fallback) and executes as a
	// single unresolvable wave 0.
	Lowered(waves [][]WaveSpan)
	// WaveStart blocks until wave w may execute. The scheduler calls it
	// immediately before running the wave's nodes.
	WaveStart(w int)
	// WaveDone reports wave w complete; elapsed is the launch's cumulative
	// model time through that wave (fetch/decode overhead excluded — it is
	// charged once at launch end).
	WaveDone(w int, elapsed units.Seconds)
}

// waveSpansOf materialises the per-wave directional footprint of a lowered
// plan for WaveHooks.Lowered. A wave containing any barrier node (nil
// spans) collapses to nil: its footprint is unknown and conflicts with
// everything.
func waveSpansOf(p *plan) [][]WaveSpan {
	out := make([][]WaveSpan, len(p.waves))
	for wi, wave := range p.waves {
		spans := make([]WaveSpan, 0, len(wave))
		bad := false
		for _, k := range wave {
			nd := &p.nodes[k]
			if nd.spans == nil {
				bad = true
				break
			}
			for _, sp := range nd.spans {
				spans = append(spans, WaveSpan{Addr: sp.addr, Bytes: sp.bytes, Write: sp.write})
			}
		}
		if bad {
			out[wi] = nil
			continue
		}
		out[wi] = spans
	}
	return out
}

// RunHooked is Run with wave-granularity execution hooks: hooks.Lowered
// receives the per-wave footprint once the plan IR is built, and every wave
// is bracketed by WaveStart (which may block the wave until an external
// hazard clears) and WaveDone (which reports the cumulative model time, so
// the observer can place the wave on the model timeline). A nil hooks is
// exactly Run.
func (l *Layer) RunHooked(s *phys.Space, base phys.Addr, hooks WaveHooks) (*Report, error) {
	return l.run(s, base, hooks)
}
