package accel

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mealib/internal/descriptor"
	"mealib/internal/phys"
	"mealib/internal/units"
)

// diffArena is the mapped window compared byte for byte between serial and
// parallel runs.
const diffArena = 4 * units.MiB

// newRigWorkers is newRig with an explicit worker-pool size.
func newRigWorkers(t *testing.T, workers int) *testRig {
	t.Helper()
	s := phys.NewSpace(1 * units.GiB)
	if _, err := s.Map(0x10000, diffArena); err != nil {
		t.Fatal(err)
	}
	cfg := MEALibConfig()
	cfg.Workers = workers
	l, err := NewLayer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{space: s, layer: l, next: 0x10000}
}

func f64bits(v float64) uint64 { return math.Float64bits(v) }

// requireReportsIdentical compares every Report field bit for bit.
func requireReportsIdentical(t *testing.T, serial, parallel *Report) {
	t.Helper()
	if f64bits(float64(serial.Time)) != f64bits(float64(parallel.Time)) {
		t.Errorf("Time: serial %v, parallel %v", serial.Time, parallel.Time)
	}
	if f64bits(float64(serial.Energy)) != f64bits(float64(parallel.Energy)) {
		t.Errorf("Energy: serial %v, parallel %v", serial.Energy, parallel.Energy)
	}
	if f64bits(float64(serial.FetchDecodeTime)) != f64bits(float64(parallel.FetchDecodeTime)) {
		t.Errorf("FetchDecodeTime: serial %v, parallel %v", serial.FetchDecodeTime, parallel.FetchDecodeTime)
	}
	if serial.Comps != parallel.Comps {
		t.Errorf("Comps: serial %d, parallel %d", serial.Comps, parallel.Comps)
	}
	if serial.NoCBytes != parallel.NoCBytes {
		t.Errorf("NoCBytes: serial %d, parallel %d", serial.NoCBytes, parallel.NoCBytes)
	}
	if serial.LMSpillBytes != parallel.LMSpillBytes {
		t.Errorf("LMSpillBytes: serial %d, parallel %d", serial.LMSpillBytes, parallel.LMSpillBytes)
	}
	if serial.RemoteBytes != parallel.RemoteBytes {
		t.Errorf("RemoteBytes: serial %d, parallel %d", serial.RemoteBytes, parallel.RemoteBytes)
	}
	if len(serial.PerOp) != len(parallel.PerOp) {
		t.Fatalf("PerOp sizes differ: %d vs %d", len(serial.PerOp), len(parallel.PerOp))
	}
	for op, ss := range serial.PerOp {
		ps := parallel.PerOp[op]
		if ps == nil {
			t.Fatalf("parallel report missing op %v", op)
		}
		if ss.Invocations != ps.Invocations || ss.Bytes != ps.Bytes {
			t.Errorf("%v: invocations/bytes differ: %+v vs %+v", op, ss, ps)
		}
		if f64bits(float64(ss.Time)) != f64bits(float64(ps.Time)) ||
			f64bits(float64(ss.Energy)) != f64bits(float64(ps.Energy)) ||
			f64bits(float64(ss.Flops)) != f64bits(float64(ps.Flops)) {
			t.Errorf("%v: modelled stats differ: %+v vs %+v", op, ss, ps)
		}
	}
}

// runDifferential builds two identical rigs, one serial (Workers=1) and one
// parallel (Workers=4 — above this host's core count, which still
// interleaves goroutines and lets -race observe conflicts), runs the
// descriptor built by build on both, and requires bit-identical arena
// contents and identical reports.
func runDifferential(t *testing.T, build func(r *testRig) *descriptor.Descriptor) {
	t.Helper()
	serialRig := newRigWorkers(t, 1)
	parallelRig := newRigWorkers(t, 4)
	sd := build(serialRig)
	pd := build(parallelRig)
	sRep := serialRig.run(t, sd)
	pRep := parallelRig.run(t, pd)
	sBytes, err := serialRig.space.ViewBytes(0x10000, int(diffArena))
	if err != nil {
		t.Fatal(err)
	}
	pBytes, err := parallelRig.space.ViewBytes(0x10000, int(diffArena))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sBytes, pBytes) {
		for i := range sBytes {
			if sBytes[i] != pBytes[i] {
				t.Fatalf("space diverges at offset %#x: serial %#x, parallel %#x", i, sBytes[i], pBytes[i])
			}
		}
	}
	requireReportsIdentical(t, sRep, pRep)
}

// storeRandF32 fills [addr, addr+4n) with seeded noise.
func storeRandF32(t *testing.T, r *testRig, addr phys.Addr, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	if err := r.space.StoreFloat32s(addr, v); err != nil {
		t.Fatal(err)
	}
}

func storeRandC64(t *testing.T, r *testRig, addr phys.Addr, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v := make([]complex64, n)
	for i := range v {
		v[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	if err := r.space.StoreComplex64s(addr, v); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentialAxpyLoop(t *testing.T) {
	runDifferential(t, func(r *testRig) *descriptor.Descriptor {
		const n, iters = 512, 24
		xa, ya := r.alloc(4*n*iters), r.alloc(4*n*iters)
		storeRandF32(t, r, xa, n*iters, 11)
		storeRandF32(t, r, ya, n*iters, 12)
		d := &descriptor.Descriptor{}
		if err := d.AddLoop(iters); err != nil {
			t.Fatal(err)
		}
		if err := d.AddComp(descriptor.OpAXPY, AxpyArgs{
			N: n, Alpha: 1.25, X: xa, Y: ya, IncX: 1, IncY: 1,
			LoopStrideX: Lin(4 * n), LoopStrideY: Lin(4 * n),
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		d.AddEndLoop()
		return d
	})
}

func TestDifferentialDotLoop(t *testing.T) {
	runDifferential(t, func(r *testRig) *descriptor.Descriptor {
		const n, iters = 768, 16
		xa, ya := r.alloc(4*n*iters), r.alloc(4*n)
		oa := r.alloc(4 * iters)
		storeRandF32(t, r, xa, n*iters, 21)
		storeRandF32(t, r, ya, n, 22)
		d := &descriptor.Descriptor{}
		if err := d.AddLoop(iters); err != nil {
			t.Fatal(err)
		}
		// y is shared read-only across iterations — still independent.
		if err := d.AddComp(descriptor.OpDOT, DotArgs{
			N: n, X: xa, Y: ya, Out: oa, IncX: 1, IncY: 1,
			LoopStrideX: Lin(4 * n), LoopStrideOut: Lin(4),
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		d.AddEndLoop()
		return d
	})
}

func TestDifferentialComplexDotNestedLoop(t *testing.T) {
	runDifferential(t, func(r *testRig) *descriptor.Descriptor {
		const n, outer, inner = 256, 4, 6
		xa := r.alloc(8 * n * outer * inner)
		ya := r.alloc(8 * n)
		oa := r.alloc(8 * outer * inner)
		storeRandC64(t, r, xa, n*outer*inner, 31)
		storeRandC64(t, r, ya, n, 32)
		d := &descriptor.Descriptor{}
		if err := d.AddLoop(outer, inner); err != nil {
			t.Fatal(err)
		}
		if err := d.AddComp(descriptor.OpDOT, DotArgs{
			N: n, Complex: true, X: xa, Y: ya, Out: oa, IncX: 1, IncY: 1,
			LoopStrideX:   Strides{0, 0, 8 * n * inner, 8 * n},
			LoopStrideOut: Strides{0, 0, 8 * inner, 8},
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		d.AddEndLoop()
		return d
	})
}

func TestDifferentialGemvLoop(t *testing.T) {
	runDifferential(t, func(r *testRig) *descriptor.Descriptor {
		const m, n, iters = 48, 32, 12
		aa := r.alloc(4 * m * n * iters)
		xa := r.alloc(4 * n)
		ya := r.alloc(4 * m * iters)
		storeRandF32(t, r, aa, m*n*iters, 41)
		storeRandF32(t, r, xa, n, 42)
		storeRandF32(t, r, ya, m*iters, 43)
		d := &descriptor.Descriptor{}
		if err := d.AddLoop(iters); err != nil {
			t.Fatal(err)
		}
		if err := d.AddComp(descriptor.OpGEMV, GemvArgs{
			M: m, N: n, Alpha: 0.5, Beta: 0.25, A: aa, Lda: n, X: xa, Y: ya,
			LoopStrideA: Lin(4 * m * n), LoopStrideY: Lin(4 * m),
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		d.AddEndLoop()
		return d
	})
}

func TestDifferentialSpmvLoopFallsBackSerial(t *testing.T) {
	runDifferential(t, func(r *testRig) *descriptor.Descriptor {
		const m, cols = 64, 64
		nnz := 0
		rowPtr := make([]int32, m+1)
		var colIdx []int32
		for i := 0; i < m; i++ {
			colIdx = append(colIdx, int32(i%cols), int32((i*7+3)%cols))
			nnz += 2
			rowPtr[i+1] = int32(nnz)
		}
		rpa := r.alloc(4 * (m + 1))
		cia := r.alloc(4 * nnz)
		va := r.alloc(4 * nnz)
		xa := r.alloc(4 * cols)
		ya := r.alloc(4 * m)
		if err := r.space.StoreInt32s(rpa, rowPtr); err != nil {
			t.Fatal(err)
		}
		if err := r.space.StoreInt32s(cia, colIdx); err != nil {
			t.Fatal(err)
		}
		storeRandF32(t, r, va, nnz, 51)
		storeRandF32(t, r, xa, cols, 52)
		d := &descriptor.Descriptor{}
		// SPMV has no loop strides: every iteration rewrites the same y, so
		// the loop must run serially — and the runs must still agree.
		if err := d.AddLoop(4); err != nil {
			t.Fatal(err)
		}
		if err := d.AddComp(descriptor.OpSPMV, SpmvArgs{
			M: m, Cols: cols, NNZ: int64(nnz),
			RowPtr: rpa, ColIdx: cia, Values: va, X: xa, Y: ya,
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		d.AddEndLoop()
		return d
	})
}

func TestDifferentialResmpLoop(t *testing.T) {
	runDifferential(t, func(r *testRig) *descriptor.Descriptor {
		const nin, nout, iters = 200, 300, 10
		sa := r.alloc(4 * nin * iters)
		da := r.alloc(4 * nout * iters)
		storeRandF32(t, r, sa, nin*iters, 61)
		d := &descriptor.Descriptor{}
		if err := d.AddLoop(iters); err != nil {
			t.Fatal(err)
		}
		if err := d.AddComp(descriptor.OpRESMP, ResmpArgs{
			NIn: nin, NOut: nout, Kind: 1, Src: sa, Dst: da,
			LoopStrideSrc: Lin(4 * nin), LoopStrideDst: Lin(4 * nout),
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		d.AddEndLoop()
		return d
	})
}

func TestDifferentialFFTLoop(t *testing.T) {
	runDifferential(t, func(r *testRig) *descriptor.Descriptor {
		const n, iters = 256, 12
		sa := r.alloc(8 * n * iters)
		storeRandC64(t, r, sa, n*iters, 71)
		d := &descriptor.Descriptor{}
		if err := d.AddLoop(iters); err != nil {
			t.Fatal(err)
		}
		// In-place per-row FFT: src==dst, rows disjoint across iterations.
		if err := d.AddComp(descriptor.OpFFT, FFTArgs{
			N: n, HowMany: 1, Src: sa, Dst: sa,
			LoopStrideSrc: Lin(8 * n), LoopStrideDst: Lin(8 * n),
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		d.AddEndLoop()
		return d
	})
}

func TestDifferentialReshpSerialFallback(t *testing.T) {
	runDifferential(t, func(r *testRig) *descriptor.Descriptor {
		const rows, cols = 48, 32
		sa := r.alloc(4 * rows * cols)
		da := r.alloc(4 * rows * cols)
		storeRandF32(t, r, sa, rows*cols, 81)
		d := &descriptor.Descriptor{}
		// RESHP carries no loop strides, so a loop around it serialises; a
		// trip count of 2 transposes twice (the second run re-transposes the
		// unchanged source — identical output, exercising the fallback).
		if err := d.AddLoop(2); err != nil {
			t.Fatal(err)
		}
		if err := d.AddComp(descriptor.OpRESHP, ReshpArgs{
			Rows: rows, Cols: cols, Elem: ElemF32, Src: sa, Dst: da,
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		d.AddEndLoop()
		return d
	})
}

func TestDifferentialChainedPassLoop(t *testing.T) {
	runDifferential(t, func(r *testRig) *descriptor.Descriptor {
		const nin, n, iters = 192, 256, 8
		rawA := r.alloc(8 * nin * iters)
		imgA := r.alloc(8 * n * iters)
		storeRandC64(t, r, rawA, nin*iters, 91)
		d := &descriptor.Descriptor{}
		// RESMP chained into FFT inside one pass, looped over disjoint rows
		// — the SAR image-formation shape.
		if err := d.AddLoop(iters); err != nil {
			t.Fatal(err)
		}
		if err := d.AddComp(descriptor.OpRESMP, ResmpArgs{
			NIn: nin, NOut: n, Kind: ResmpComplex, Src: rawA, Dst: imgA,
			LoopStrideSrc: Lin(8 * nin), LoopStrideDst: Lin(8 * n),
		}.Params()); err != nil {
			t.Fatal(err)
		}
		if err := d.AddComp(descriptor.OpFFT, FFTArgs{
			N: n, HowMany: 1, Src: imgA, Dst: imgA,
			LoopStrideSrc: Lin(8 * n), LoopStrideDst: Lin(8 * n),
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		d.AddEndLoop()
		return d
	})
}

func TestDifferentialMultiplePassesAndLoops(t *testing.T) {
	runDifferential(t, func(r *testRig) *descriptor.Descriptor {
		const n, iters = 256, 8
		xa, ya := r.alloc(4*n*iters), r.alloc(4*n*iters)
		oa := r.alloc(4 * iters)
		storeRandF32(t, r, xa, n*iters, 101)
		storeRandF32(t, r, ya, n*iters, 102)
		d := &descriptor.Descriptor{}
		// Plain pass, then a parallelisable loop, then a second loop reading
		// the first loop's output.
		if err := d.AddComp(descriptor.OpAXPY, AxpyArgs{
			N: n, Alpha: 2, X: xa, Y: ya, IncX: 1, IncY: 1,
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		if err := d.AddLoop(iters); err != nil {
			t.Fatal(err)
		}
		if err := d.AddComp(descriptor.OpAXPY, AxpyArgs{
			N: n, Alpha: -0.5, X: xa, Y: ya, IncX: 1, IncY: 1,
			LoopStrideX: Lin(4 * n), LoopStrideY: Lin(4 * n),
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		d.AddEndLoop()
		if err := d.AddLoop(iters); err != nil {
			t.Fatal(err)
		}
		if err := d.AddComp(descriptor.OpDOT, DotArgs{
			N: n, X: xa, Y: ya, Out: oa, IncX: 1, IncY: 1,
			LoopStrideX: Lin(4 * n), LoopStrideY: Lin(4 * n), LoopStrideOut: Lin(4),
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		d.AddEndLoop()
		return d
	})
}

// TestDifferentialOverlappingWritesFallsBack drives a loop whose iterations
// all accumulate into the same y: the checker must detect the conflict and
// the serialised parallel rig must match the serial one exactly.
func TestDifferentialOverlappingWritesFallsBack(t *testing.T) {
	runDifferential(t, func(r *testRig) *descriptor.Descriptor {
		const n, iters = 512, 8
		xa, ya := r.alloc(4*n*iters), r.alloc(4*n)
		storeRandF32(t, r, xa, n*iters, 111)
		storeRandF32(t, r, ya, n, 112)
		d := &descriptor.Descriptor{}
		if err := d.AddLoop(iters); err != nil {
			t.Fatal(err)
		}
		if err := d.AddComp(descriptor.OpAXPY, AxpyArgs{
			N: n, Alpha: 1, X: xa, Y: ya, IncX: 1, IncY: 1,
			LoopStrideX: Lin(4 * n), // y has no stride: all iterations write it
		}.Params()); err != nil {
			t.Fatal(err)
		}
		d.AddEndPass()
		d.AddEndLoop()
		return d
	})
}

// --- loopIndependent unit tests --------------------------------------------

func axpyLoopPasses(t *testing.T, a AxpyArgs) [][]passInstr {
	t.Helper()
	return [][]passInstr{{{op: descriptor.OpAXPY, params: a.Params()}}}
}

func TestLoopIndependentDisjointStrides(t *testing.T) {
	counts := descriptor.LoopCounts{0, 0, 0, 16}
	passes := axpyLoopPasses(t, AxpyArgs{
		N: 64, X: 0x1000, Y: 0x9000, IncX: 1, IncY: 1,
		LoopStrideX: Lin(256), LoopStrideY: Lin(256),
	})
	if !loopIndependent(counts, passes, 16) {
		t.Error("disjoint strided iterations must be independent")
	}
}

func TestLoopIndependentSharedWriteConflicts(t *testing.T) {
	counts := descriptor.LoopCounts{0, 0, 0, 16}
	passes := axpyLoopPasses(t, AxpyArgs{
		N: 64, X: 0x1000, Y: 0x9000, IncX: 1, IncY: 1,
		LoopStrideX: Lin(256), // y unstridden: every iteration writes it
	})
	if loopIndependent(counts, passes, 16) {
		t.Error("shared written operand must conflict")
	}
}

func TestLoopIndependentSharedReadOK(t *testing.T) {
	counts := descriptor.LoopCounts{0, 0, 0, 16}
	passes := [][]passInstr{{{op: descriptor.OpDOT, params: DotArgs{
		N: 64, X: 0x1000, Y: 0x9000, Out: 0xd000, IncX: 1, IncY: 1,
		LoopStrideX: Lin(256), LoopStrideOut: Lin(4), // y shared read-only
	}.Params()}}}
	if !loopIndependent(counts, passes, 16) {
		t.Error("shared read-only operand must not conflict")
	}
}

func TestLoopIndependentPartialOverlapConflicts(t *testing.T) {
	counts := descriptor.LoopCounts{0, 0, 0, 8}
	// Stride smaller than the written span: iteration i+1's y overlaps i's.
	passes := axpyLoopPasses(t, AxpyArgs{
		N: 64, X: 0x1000, Y: 0x9000, IncX: 1, IncY: 1,
		LoopStrideX: Lin(256), LoopStrideY: Lin(128),
	})
	if loopIndependent(counts, passes, 8) {
		t.Error("overlapping write strides must conflict")
	}
}

func TestLoopIndependentEventCapFallsBack(t *testing.T) {
	counts := descriptor.LoopCounts{0, 0, 0, 1}
	passes := axpyLoopPasses(t, AxpyArgs{
		N: 4, X: 0x1000, Y: 0x2000, IncX: 1, IncY: 1,
		LoopStrideX: Lin(16), LoopStrideY: Lin(16),
	})
	if loopIndependent(counts, passes, indepMaxEvents) {
		t.Error("event cap must force serial fallback")
	}
}
