package tdl

import (
	"fmt"

	"mealib/internal/accel"
)

// Fuse runs the descriptor fusion analysis (accel.FusionGroups) over the
// compiled form of prog and applies the resulting merges to the program
// itself: adjacent producer→consumer passes — top-level or inside one LOOP
// body — collapse into single chained passes whose intermediates stay in
// tile-local memory. Because the merges come from the same analysis the
// accelerator layer's plan lowering uses, a Fused program compiles to
// exactly the chained passes the plan IR would have fused anyway; fusing at
// the TDL level additionally lets the descriptor verifier see (and check)
// the chained pass, and shrinks the descriptor the configuration unit must
// fetch and parse.
//
// The returned groups describe what merged. prog is modified in place only
// when the analysis succeeds; any error leaves it untouched.
func Fuse(prog *Program, resolve ParamResolver, cfg *accel.Config) ([]accel.FusedGroup, error) {
	d, err := Compile(prog, resolve)
	if err != nil {
		return nil, err
	}
	groups, err := accel.FusionGroups(d, cfg)
	if err != nil || len(groups) == 0 {
		return groups, err
	}
	// Map the analysis' program-order pass indices (counting every pass,
	// top-level and loop-body alike) onto program locations.
	type passLoc struct {
		block  int
		loop   bool
		inLoop int
	}
	var locs []passLoc
	for bi, blk := range prog.Blocks {
		switch v := blk.(type) {
		case Pass:
			locs = append(locs, passLoc{block: bi})
		case Loop:
			for pi := range v.Passes {
				locs = append(locs, passLoc{block: bi, loop: true, inLoop: pi})
			}
		}
	}
	// Apply in reverse program order so earlier locations stay valid.
	for gi := len(groups) - 1; gi >= 0; gi-- {
		g := groups[gi]
		if g.FirstPass < 0 || g.FirstPass+g.Passes > len(locs) {
			return nil, fmt.Errorf("tdl: fusion group [%d,%d) outside program", g.FirstPass, g.FirstPass+g.Passes)
		}
		first := locs[g.FirstPass]
		if first.loop {
			lp, ok := prog.Blocks[first.block].(Loop)
			if !ok || first.inLoop+g.Passes > len(lp.Passes) {
				return nil, fmt.Errorf("tdl: fusion group at pass %d does not fit its loop", g.FirstPass)
			}
			merged := Pass{Line: lp.Passes[first.inLoop].Line}
			for k := 0; k < g.Passes; k++ {
				merged.Comps = append(merged.Comps, lp.Passes[first.inLoop+k].Comps...)
			}
			passes := append([]Pass(nil), lp.Passes[:first.inLoop]...)
			passes = append(passes, merged)
			passes = append(passes, lp.Passes[first.inLoop+g.Passes:]...)
			lp.Passes = passes
			prog.Blocks[first.block] = lp
		} else {
			for k := 1; k < g.Passes; k++ {
				if err := MergePasses(prog, first.block); err != nil {
					return nil, err
				}
			}
		}
	}
	return groups, nil
}
