package tdl

import (
	"fmt"

	"mealib/internal/descriptor"
)

// ParamResolver maps a COMP parameter reference (the "fft.para" strings the
// compiler emits) to the parameter fields of that invocation. In the paper
// these are files next to the generated code; here they are tables produced
// by the same compiler pass.
type ParamResolver func(ref string) (descriptor.Params, error)

// MapResolver adapts a plain map to a ParamResolver.
func MapResolver(m map[string]descriptor.Params) ParamResolver {
	return func(ref string) (descriptor.Params, error) {
		p, ok := m[ref]
		if !ok {
			return nil, fmt.Errorf("tdl: unresolved parameter reference %q", ref)
		}
		return p, nil
	}
}

// Compile lowers a TDL program to an accelerator descriptor, resolving every
// parameter reference.
func Compile(prog *Program, resolve ParamResolver) (*descriptor.Descriptor, error) {
	if prog == nil || len(prog.Blocks) == 0 {
		return nil, fmt.Errorf("tdl: empty program")
	}
	if resolve == nil {
		return nil, fmt.Errorf("tdl: nil parameter resolver")
	}
	d := &descriptor.Descriptor{}
	addPass := func(pass Pass) error {
		for _, c := range pass.Comps {
			p, err := resolve(c.ParamRef)
			if err != nil {
				return err
			}
			if err := d.AddComp(c.Op, p); err != nil {
				return err
			}
		}
		d.AddEndPass()
		return nil
	}
	for _, blk := range prog.Blocks {
		switch v := blk.(type) {
		case Pass:
			if err := addPass(v); err != nil {
				return nil, err
			}
		case Loop:
			counts := make([]uint32, len(v.Counts))
			for i, c := range v.Counts {
				counts[i] = uint32(c)
			}
			if err := d.AddLoop(counts...); err != nil {
				return nil, err
			}
			for _, pass := range v.Passes {
				if err := addPass(pass); err != nil {
					return nil, err
				}
			}
			d.AddEndLoop()
		default:
			return nil, fmt.Errorf("tdl: unknown block type %T", blk)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// CompileString parses and compiles in one step.
func CompileString(src string, resolve ParamResolver) (*descriptor.Descriptor, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog, resolve)
}

// MergePasses implements the chaining optimization of compiler pass 1
// (paper §3.4): when two adjacent top-level passes form a producer/consumer
// pair, they are merged into one pass so the configuration unit chains the
// accelerators through tile-local memory instead of round-tripping the
// intermediate through DRAM. The caller asserts chainability (the compiler
// checks that the output buffer of the first is the input of the second).
func MergePasses(prog *Program, i int) error {
	if i < 0 || i+1 >= len(prog.Blocks) {
		return fmt.Errorf("tdl: merge index %d out of range", i)
	}
	a, ok1 := prog.Blocks[i].(Pass)
	b, ok2 := prog.Blocks[i+1].(Pass)
	if !ok1 || !ok2 {
		return fmt.Errorf("tdl: blocks %d and %d are not both passes", i, i+1)
	}
	merged := Pass{Comps: append(append([]Comp(nil), a.Comps...), b.Comps...)}
	prog.Blocks = append(prog.Blocks[:i], append([]Block{merged}, prog.Blocks[i+2:]...)...)
	return nil
}
