package tdl

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mealib/internal/descriptor"
)

const stapTDL = `
# Data copy + FFT chained into one pass (Listing 1 translation).
PASS {
  COMP RESHP PARAMS "reshape.para"
  COMP FFT PARAMS "fft.para"
}
LOOP 128 {
  PASS {
    COMP DOT PARAMS "dot.para"
  }
}
`

func TestParseBasic(t *testing.T) {
	prog, err := Parse(stapTDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(prog.Blocks))
	}
	pass, ok := prog.Blocks[0].(Pass)
	if !ok {
		t.Fatalf("block 0 is %T, want Pass", prog.Blocks[0])
	}
	if len(pass.Comps) != 2 || pass.Comps[0].Op != descriptor.OpRESHP || pass.Comps[1].Op != descriptor.OpFFT {
		t.Errorf("pass comps = %+v", pass.Comps)
	}
	if pass.Comps[1].ParamRef != "fft.para" {
		t.Errorf("param ref = %q", pass.Comps[1].ParamRef)
	}
	loop, ok := prog.Blocks[1].(Loop)
	if !ok {
		t.Fatalf("block 1 is %T, want Loop", prog.Blocks[1])
	}
	if loop.Count() != 128 || len(loop.Passes) != 1 {
		t.Errorf("loop = %+v", loop)
	}
}

func TestParseAllOpcodes(t *testing.T) {
	for name, op := range map[string]descriptor.OpCode{
		"AXPY": descriptor.OpAXPY, "DOT": descriptor.OpDOT, "GEMV": descriptor.OpGEMV,
		"SPMV": descriptor.OpSPMV, "RESMP": descriptor.OpRESMP, "FFT": descriptor.OpFFT,
		"RESHP": descriptor.OpRESHP,
	} {
		prog, err := Parse(`PASS { COMP ` + name + ` PARAMS "p" }`)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if got := prog.Blocks[0].(Pass).Comps[0].Op; got != op {
			t.Errorf("%s parsed as %v", name, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              ``,
		"comment only":       `# nothing here`,
		"bad top level":      `COMP FFT PARAMS "p"`,
		"unknown accel":      `PASS { COMP WHAT PARAMS "p" }`,
		"missing params kw":  `PASS { COMP FFT "p" }`,
		"missing ref":        `PASS { COMP FFT PARAMS }`,
		"unterminated str":   `PASS { COMP FFT PARAMS "p }`,
		"empty pass":         `PASS { }`,
		"empty loop":         `LOOP 4 { }`,
		"zero loop":          `LOOP 0 { PASS { COMP FFT PARAMS "p" } }`,
		"missing loop count": `LOOP { PASS { COMP FFT PARAMS "p" } }`,
		"missing brace":      `PASS COMP FFT PARAMS "p" }`,
		"trailing garbage":   `PASS { COMP FFT PARAMS "p" } @`,
		"loop in loop":       `LOOP 2 { LOOP 2 { PASS { COMP FFT PARAMS "p" } } }`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse must fail", name)
		}
	}
}

func TestParseReportsLineNumbers(t *testing.T) {
	_, err := Parse("PASS {\n COMP FFT PARAMS \"p\"\n COMP NOPE PARAMS \"p\"\n}")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should name line 3: %v", err)
	}
}

func TestMultiLevelLoop(t *testing.T) {
	prog, err := Parse(`LOOP 4 8 16 { PASS { COMP DOT PARAMS "p" } }`)
	if err != nil {
		t.Fatal(err)
	}
	loop := prog.Blocks[0].(Loop)
	if loop.Count() != 4*8*16 {
		t.Errorf("nest total = %d", loop.Count())
	}
	d, err := Compile(prog, MapResolver(map[string]descriptor.Params{"p": {1}}))
	if err != nil {
		t.Fatal(err)
	}
	if d.Instrs[0].Counts.Total() != 4*8*16 {
		t.Errorf("descriptor total = %d", d.Instrs[0].Counts.Total())
	}
	// Format must preserve the levels.
	prog2, err := Parse(Format(prog))
	if err != nil {
		t.Fatal(err)
	}
	if prog2.Blocks[0].(Loop).Count() != 4*8*16 {
		t.Error("format lost loop levels")
	}
}

func TestLoopTooDeep(t *testing.T) {
	if _, err := Parse(`LOOP 1 2 3 4 5 { PASS { COMP DOT PARAMS "p" } }`); err == nil {
		t.Error("5-level nest must fail")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	prog, err := Parse(stapTDL)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(prog)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted output does not reparse: %v\n%s", err, text)
	}
	if Format(prog2) != text {
		t.Error("Format is not a fixed point")
	}
}

func testResolver() ParamResolver {
	return MapResolver(map[string]descriptor.Params{
		"reshape.para": {64, 64, 0x1000, 0x2000},
		"fft.para":     {64, 0, 1, 0x2000},
		"dot.para":     {32, 1, 0x3000, 0x4000, 0x5000},
	})
}

func TestCompile(t *testing.T) {
	d, err := CompileString(stapTDL, testResolver())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// RESHP, FFT, ENDPASS, LOOP, DOT, ENDPASS, ENDLOOP = 7 instructions.
	if len(d.Instrs) != 7 {
		t.Fatalf("instructions = %d, want 7", len(d.Instrs))
	}
	if d.Instrs[3].Kind != descriptor.KindLoop || d.Instrs[3].Counts.Total() != 128 {
		t.Errorf("loop instruction = %+v", d.Instrs[3])
	}
	if d.Comps() != 3 {
		t.Errorf("comps = %d, want 3", d.Comps())
	}
	p, err := d.ParamsOf(2)
	if err != nil || p[0] != 32 {
		t.Errorf("dot params = %v, %v", p, err)
	}
}

func TestCompileUnresolvedRef(t *testing.T) {
	if _, err := CompileString(stapTDL, MapResolver(nil)); err == nil {
		t.Error("unresolved reference must fail")
	}
}

func TestCompileNilResolver(t *testing.T) {
	prog, _ := Parse(stapTDL)
	if _, err := Compile(prog, nil); err == nil {
		t.Error("nil resolver must fail")
	}
	if _, err := Compile(nil, testResolver()); err == nil {
		t.Error("nil program must fail")
	}
}

func TestMergePasses(t *testing.T) {
	prog, err := Parse(`
PASS { COMP RESMP PARAMS "a" }
PASS { COMP FFT PARAMS "b" }
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := MergePasses(prog, 0); err != nil {
		t.Fatal(err)
	}
	if len(prog.Blocks) != 1 {
		t.Fatalf("blocks after merge = %d", len(prog.Blocks))
	}
	pass := prog.Blocks[0].(Pass)
	if len(pass.Comps) != 2 || pass.Comps[0].Op != descriptor.OpRESMP || pass.Comps[1].Op != descriptor.OpFFT {
		t.Errorf("merged pass = %+v", pass)
	}
}

func TestMergePassesErrors(t *testing.T) {
	prog, _ := Parse(`PASS { COMP FFT PARAMS "a" }`)
	if err := MergePasses(prog, 0); err == nil {
		t.Error("merge needs two blocks")
	}
	prog2, _ := Parse(`
PASS { COMP FFT PARAMS "a" }
LOOP 2 { PASS { COMP DOT PARAMS "b" } }
`)
	if err := MergePasses(prog2, 0); err == nil {
		t.Error("merging a pass with a loop must fail")
	}
}

// Property: Format is a bijection on the parse tree — random programs
// survive a Format/Parse/Format round trip, and compiling either side
// yields the same descriptor structure.
func TestPropertyFormatParseRoundTrip(t *testing.T) {
	ops := []string{"AXPY", "DOT", "GEMV", "SPMV", "RESMP", "FFT", "RESHP"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		params := map[string]descriptor.Params{}
		blocks := rng.Intn(4) + 1
		ref := 0
		mkPass := func(indent string) {
			fmt.Fprintf(&b, "%sPASS {\n", indent)
			comps := rng.Intn(3) + 1
			for c := 0; c < comps; c++ {
				name := fmt.Sprintf("p%d.para", ref)
				ref++
				params[name] = descriptor.Params{uint64(rng.Intn(100))}
				fmt.Fprintf(&b, "%s  COMP %s PARAMS %q\n", indent, ops[rng.Intn(len(ops))], name)
			}
			fmt.Fprintf(&b, "%s}\n", indent)
		}
		for i := 0; i < blocks; i++ {
			if rng.Intn(2) == 0 {
				levels := rng.Intn(3) + 1
				b.WriteString("LOOP")
				for l := 0; l < levels; l++ {
					fmt.Fprintf(&b, " %d", rng.Intn(16)+1)
				}
				b.WriteString(" {\n")
				passes := rng.Intn(2) + 1
				for p := 0; p < passes; p++ {
					mkPass("  ")
				}
				b.WriteString("}\n")
			} else {
				mkPass("")
			}
		}
		src := b.String()
		prog, err := Parse(src)
		if err != nil {
			return false
		}
		text := Format(prog)
		prog2, err := Parse(text)
		if err != nil {
			return false
		}
		if Format(prog2) != text {
			return false
		}
		d1, err1 := Compile(prog, MapResolver(params))
		d2, err2 := Compile(prog2, MapResolver(params))
		if err1 != nil || err2 != nil {
			return false
		}
		if len(d1.Instrs) != len(d2.Instrs) || d1.Comps() != d2.Comps() {
			return false
		}
		for i := range d1.Instrs {
			a, c := d1.Instrs[i], d2.Instrs[i]
			if a.Kind != c.Kind || a.Op != c.Op || a.Counts != c.Counts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
