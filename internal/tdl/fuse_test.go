package tdl

import (
	"testing"

	"mealib/internal/accel"
	"mealib/internal/descriptor"
	"mealib/internal/kernels"
	"mealib/internal/phys"
)

// fuseResolver binds the param refs of the fusion test programs to real
// addresses laid out back to back.
func fuseResolver(t *testing.T) ParamResolver {
	t.Helper()
	const n, nin = 1024, 768
	a := phys.Addr(0x10000)
	b := a + phys.Addr(8*n*16)
	c := b + phys.Addr(8*n*16)
	table := map[string]descriptor.Params{
		"fft.ab": accel.FFTArgs{N: n, HowMany: 1, Src: a, Dst: b}.Params(),
		"fft.bc": accel.FFTArgs{N: n, HowMany: 1, Src: b, Dst: c}.Params(),
		"fft.ca": accel.FFTArgs{N: n, HowMany: 1, Src: c, Dst: a}.Params(),
		"resmp.loop": accel.ResmpArgs{
			NIn: nin, NOut: n, Kind: accel.ResmpComplex + int64(kernels.InterpLinear),
			Src: a, Dst: b,
			LoopStrideSrc: accel.Lin(8 * nin), LoopStrideDst: accel.Lin(8 * n),
		}.Params(),
		"fft.loop": accel.FFTArgs{
			N: n, HowMany: 1, Src: b, Dst: b,
			LoopStrideSrc: accel.Lin(8 * n), LoopStrideDst: accel.Lin(8 * n),
		}.Params(),
	}
	return func(ref string) (descriptor.Params, error) {
		p, ok := table[ref]
		if !ok {
			t.Fatalf("unresolved param ref %q", ref)
		}
		return p, nil
	}
}

func TestFuseTopLevelPasses(t *testing.T) {
	prog, err := Parse(`
PASS { COMP FFT PARAMS "fft.ab" }
PASS { COMP FFT PARAMS "fft.bc" }
`)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := Fuse(prog, fuseResolver(t), accel.MEALibConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Passes != 2 {
		t.Fatalf("groups = %+v, want one two-pass group", groups)
	}
	if len(prog.Blocks) != 1 {
		t.Fatalf("fused program has %d blocks, want 1", len(prog.Blocks))
	}
	pass, ok := prog.Blocks[0].(Pass)
	if !ok || len(pass.Comps) != 2 {
		t.Fatalf("fused block = %+v, want one pass with two comps", prog.Blocks[0])
	}
	// The fused program must compile to a single chained PASS.
	d, err := Compile(prog, fuseResolver(t))
	if err != nil {
		t.Fatal(err)
	}
	var passes int
	for _, in := range d.Instrs {
		if in.Kind == descriptor.KindEndPass {
			passes++
		}
	}
	if passes != 1 {
		t.Errorf("fused descriptor has %d passes, want 1", passes)
	}
}

func TestFuseLoopBodyPasses(t *testing.T) {
	prog, err := Parse(`
LOOP 16 {
  PASS { COMP RESMP PARAMS "resmp.loop" }
  PASS { COMP FFT PARAMS "fft.loop" }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := Fuse(prog, fuseResolver(t), accel.MEALibConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Iters != 16 {
		t.Fatalf("groups = %+v, want one group x16 iterations", groups)
	}
	loop, ok := prog.Blocks[0].(Loop)
	if !ok || len(loop.Passes) != 1 || len(loop.Passes[0].Comps) != 2 {
		t.Fatalf("fused loop = %+v, want one two-comp pass", prog.Blocks[0])
	}
}

// TestFuseLeavesUnrelatedPasses: passes with no producer→consumer handoff
// must come through structurally untouched.
func TestFuseLeavesUnrelatedPasses(t *testing.T) {
	src := `
PASS { COMP FFT PARAMS "fft.ab" }
PASS { COMP FFT PARAMS "fft.ca" }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := Fuse(prog, fuseResolver(t), accel.MEALibConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("unrelated passes fused: %+v", groups)
	}
	if len(prog.Blocks) != 2 {
		t.Fatalf("program restructured without fusion: %d blocks", len(prog.Blocks))
	}
}
