// Package tdl implements the Task Description Language of MEALib
// (paper §3.4): the high-level description of the computation a descriptor
// performs. TDL has three block forms —
//
//	COMP <ACCEL> PARAMS "<param-ref>"   one accelerator invocation
//	PASS { COMP... }                     a chained datapath with its own
//	                                     input and output buffers
//	LOOP <N> { PASS... }                 repeat the enclosed passes N times
//
// A program is a sequence of PASS and LOOP blocks. '#' starts a comment.
// The source-to-source compiler (internal/ccompiler) generates TDL strings
// and parameter tables; this package parses them and compiles them to the
// binary accelerator descriptor (internal/descriptor).
package tdl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"mealib/internal/descriptor"
)

// Program is a parsed TDL program.
type Program struct {
	Blocks []Block
}

// Block is a top-level TDL block.
type Block interface{ isBlock() }

// Pass is a chained datapath of accelerator invocations.
type Pass struct {
	Comps []Comp
	// Line is the 1-based source line of the PASS keyword (0 when the
	// program was built programmatically rather than parsed).
	Line int
}

func (Pass) isBlock() {}

// Loop repeats its passes over a hardware loop nest; Counts are the
// per-level iteration counts, outermost first (a single count is a plain
// loop). Count returns the flattened total.
type Loop struct {
	Counts []int
	Passes []Pass
	// Line is the 1-based source line of the LOOP keyword (0 when built
	// programmatically).
	Line int
}

// Count returns the flattened iteration count of the nest.
func (l Loop) Count() int {
	total := 1
	for _, c := range l.Counts {
		total *= c
	}
	return total
}

func (Loop) isBlock() {}

// Comp is one accelerator invocation: the accelerator and a reference to
// its parameter block (the paper stores parameters in files like
// "fft.para"; the reference is resolved at compile time).
type Comp struct {
	Op       descriptor.OpCode
	ParamRef string
	// Line is the 1-based source line of the COMP keyword (0 when built
	// programmatically).
	Line int
}

// token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokString
	tokLBrace
	tokRBrace
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("'%s'", t.text)
	}
}

// lex tokenises src.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", line})
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' && src[j] != '\n' {
				j++
			}
			if j >= len(src) || src[j] != '"' {
				return nil, fmt.Errorf("tdl: line %d: unterminated string", line)
			}
			toks = append(toks, token{tokString, src[i+1 : j], line})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokInt, src[i:j], line})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("tdl: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

// parser consumes the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("tdl: line %d: expected %s, found %s", t.line, what, t)
	}
	return t, nil
}

// opCodes maps TDL accelerator mnemonics to opcodes.
var opCodes = map[string]descriptor.OpCode{
	"AXPY":  descriptor.OpAXPY,
	"DOT":   descriptor.OpDOT,
	"GEMV":  descriptor.OpGEMV,
	"SPMV":  descriptor.OpSPMV,
	"RESMP": descriptor.OpRESMP,
	"FFT":   descriptor.OpFFT,
	"RESHP": descriptor.OpRESHP,
}

// Parse parses a TDL program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().kind != tokEOF {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("tdl: line %d: expected PASS or LOOP, found %s", t.line, t)
		}
		switch t.text {
		case "PASS":
			pass, err := p.parsePass()
			if err != nil {
				return nil, err
			}
			prog.Blocks = append(prog.Blocks, pass)
		case "LOOP":
			loop, err := p.parseLoop()
			if err != nil {
				return nil, err
			}
			prog.Blocks = append(prog.Blocks, loop)
		default:
			return nil, fmt.Errorf("tdl: line %d: expected PASS or LOOP, found %s", t.line, t)
		}
	}
	if len(prog.Blocks) == 0 {
		return nil, fmt.Errorf("tdl: empty program")
	}
	return prog, nil
}

func (p *parser) parsePass() (Pass, error) {
	var pass Pass
	kw, err := p.expect(tokIdent, "PASS")
	if err != nil {
		return pass, err
	}
	pass.Line = kw.line
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return pass, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "COMP" {
		comp, err := p.parseComp()
		if err != nil {
			return pass, err
		}
		pass.Comps = append(pass.Comps, comp)
	}
	if len(pass.Comps) == 0 {
		return pass, fmt.Errorf("tdl: line %d: PASS without COMP blocks", p.peek().line)
	}
	if _, err := p.expect(tokRBrace, "'}'"); err != nil {
		return pass, err
	}
	return pass, nil
}

func (p *parser) parseComp() (Comp, error) {
	var comp Comp
	ckw, err := p.expect(tokIdent, "COMP")
	if err != nil {
		return comp, err
	}
	comp.Line = ckw.line
	opTok, err := p.expect(tokIdent, "accelerator name")
	if err != nil {
		return comp, err
	}
	op, ok := opCodes[opTok.text]
	if !ok {
		return comp, fmt.Errorf("tdl: line %d: unknown accelerator %q", opTok.line, opTok.text)
	}
	comp.Op = op
	kw, err := p.expect(tokIdent, "PARAMS")
	if err != nil {
		return comp, err
	}
	if kw.text != "PARAMS" {
		return comp, fmt.Errorf("tdl: line %d: expected PARAMS, found %s", kw.line, kw)
	}
	ref, err := p.expect(tokString, "parameter reference string")
	if err != nil {
		return comp, err
	}
	comp.ParamRef = ref.text
	return comp, nil
}

func (p *parser) parseLoop() (Loop, error) {
	var loop Loop
	lkw, err := p.expect(tokIdent, "LOOP")
	if err != nil {
		return loop, err
	}
	loop.Line = lkw.line
	countTok, err := p.expect(tokInt, "loop count")
	if err != nil {
		return loop, err
	}
	count, err := strconv.Atoi(countTok.text)
	if err != nil || count <= 0 {
		return loop, fmt.Errorf("tdl: line %d: invalid loop count %q", countTok.line, countTok.text)
	}
	loop.Counts = []int{count}
	for p.peek().kind == tokInt {
		extra := p.next()
		c, err := strconv.Atoi(extra.text)
		if err != nil || c <= 0 {
			return loop, fmt.Errorf("tdl: line %d: invalid loop count %q", extra.line, extra.text)
		}
		loop.Counts = append(loop.Counts, c)
	}
	if len(loop.Counts) > descriptor.MaxLoopLevels {
		return loop, fmt.Errorf("tdl: line %d: loop nest deeper than %d levels", countTok.line, descriptor.MaxLoopLevels)
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return loop, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "PASS" {
		pass, err := p.parsePass()
		if err != nil {
			return loop, err
		}
		loop.Passes = append(loop.Passes, pass)
	}
	if len(loop.Passes) == 0 {
		return loop, fmt.Errorf("tdl: line %d: LOOP without PASS blocks", p.peek().line)
	}
	if _, err := p.expect(tokRBrace, "'}'"); err != nil {
		return loop, err
	}
	return loop, nil
}

// Format renders the program back to canonical TDL text.
func Format(prog *Program) string {
	var b strings.Builder
	for _, blk := range prog.Blocks {
		switch v := blk.(type) {
		case Pass:
			formatPass(&b, v, "")
		case Loop:
			b.WriteString("LOOP")
			for _, c := range v.Counts {
				fmt.Fprintf(&b, " %d", c)
			}
			b.WriteString(" {\n")
			for _, pass := range v.Passes {
				formatPass(&b, pass, "  ")
			}
			b.WriteString("}\n")
		}
	}
	return b.String()
}

func formatPass(b *strings.Builder, pass Pass, indent string) {
	fmt.Fprintf(b, "%sPASS {\n", indent)
	for _, c := range pass.Comps {
		fmt.Fprintf(b, "%s  COMP %s PARAMS %q\n", indent, c.Op, c.ParamRef)
	}
	fmt.Fprintf(b, "%s}\n", indent)
}
