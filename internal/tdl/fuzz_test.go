// External test package: the fuzzers exercise the parser together with
// the static verifier (internal/analysis/tdlcheck) and the runtime
// (internal/mealibrt), both of which import tdl — an in-package test
// would be an import cycle.
package tdl_test

import (
	"context"
	"testing"

	"mealib/internal/accel"
	"mealib/internal/analysis/tdlcheck"
	"mealib/internal/descriptor"
	"mealib/internal/mealibrt"
	"mealib/internal/tdl"
	"mealib/internal/units"
)

// FuzzParse hardens the TDL front end: arbitrary input must never panic,
// and anything that parses must survive Format -> Parse -> Compile. On
// top of that sits the verifier contract: a program that passes
// tdlcheck.Verify with well-formed parameters must never panic the
// runtime — at worst it may fail with a clean error (capacity limits,
// command-space exhaustion).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`PASS { COMP FFT PARAMS "fft.para" }`,
		`LOOP 128 { PASS { COMP DOT PARAMS "dot.para" } }`,
		`LOOP 4 8 16 { PASS { COMP AXPY PARAMS "a" COMP RESHP PARAMS "b" } }`,
		"# comment only",
		`PASS {`,
		`LOOP { PASS { COMP FFT PARAMS "p" } }`,
		`PASS { COMP NOPE PARAMS "p" }`,
		"\x00\xff{}",
		`LOOP 99999999999999999999 { PASS { COMP FFT PARAMS "p" } }`,
		`LOOP 8589934592 { PASS { COMP FFT PARAMS "p" } }`,
		`PASS { COMP GEMV PARAMS "g" } PASS { COMP SPMV PARAMS "s" } PASS { COMP RESMP PARAMS "r" }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := tdl.Parse(src)
		if err != nil {
			return
		}
		text := tdl.Format(prog)
		prog2, err := tdl.Parse(text)
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\n%q", err, text)
		}
		resolver := func(string) (descriptor.Params, error) { return descriptor.Params{1}, nil }
		d1, err1 := tdl.Compile(prog, resolver)
		d2, err2 := tdl.Compile(prog2, resolver)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("compile divergence: %v vs %v", err1, err2)
		}
		if err1 == nil && len(d1.Instrs) != len(d2.Instrs) {
			t.Fatalf("instruction count divergence: %d vs %d", len(d1.Instrs), len(d2.Instrs))
		}
		execVerified(t, prog)
	})
}

// execVerified binds op-correct parameters to every reference in the
// program, runs the static verifier, and — when it accepts — compiles and
// executes the program on a fresh runtime. Execution errors are tolerated
// (instruction memory and command space are finite); panics are not.
func execVerified(t *testing.T, prog *tdl.Program) {
	// Functional execution is per-iteration; bound the work so the fuzzer
	// stays fast and wrap-around in huge loop products cannot hang it.
	total := 0
	for _, b := range prog.Blocks {
		switch v := b.(type) {
		case tdl.Pass:
			total += len(v.Comps)
		case tdl.Loop:
			iters := 1
			for _, c := range v.Counts {
				if c <= 0 || c > 4096 || iters > 4096/c {
					return
				}
				iters *= c
			}
			for _, p := range v.Passes {
				total += iters * len(p.Comps)
			}
		}
	}
	if total > 4096 {
		return
	}

	r, err := mealibrt.New(mealibrt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	params := make(map[string]descriptor.Params)
	ok := true
	eachComp(prog, func(c tdl.Comp) {
		if _, seen := params[c.ParamRef]; seen || !ok {
			return
		}
		p, built := buildParams(t, r, c.Op)
		if !built {
			ok = false // address space exhausted: nothing to assert
			return
		}
		params[c.ParamRef] = p
	})
	if !ok {
		return
	}
	if err := tdlcheck.Verify(prog, tdl.MapResolver(params)); err != nil {
		return
	}
	plan, err := r.AccPlan(tdl.Format(prog), params)
	if err != nil {
		return // e.g. descriptor exceeds instruction memory
	}
	_, _ = plan.Execute(context.Background()) // errors tolerated; a panic fails the fuzzer
}

// eachComp visits every COMP in program order.
func eachComp(prog *tdl.Program, fn func(tdl.Comp)) {
	for _, b := range prog.Blocks {
		switch v := b.(type) {
		case tdl.Pass:
			for _, c := range v.Comps {
				fn(c)
			}
		case tdl.Loop:
			for _, p := range v.Passes {
				for _, c := range p.Comps {
					fn(c)
				}
			}
		}
	}
}

// buildParams allocates and initializes operand buffers for one opcode
// and returns a well-formed argument block. Reports false when the
// runtime cannot allocate (programs with very many references).
func buildParams(t *testing.T, r *mealibrt.Runtime, op descriptor.OpCode) (descriptor.Params, bool) {
	failed := false
	alloc := func(n units.Bytes) *mealibrt.Buffer {
		b, err := r.MemAlloc(n)
		if err != nil {
			failed = true
			return nil
		}
		return b
	}
	storeF := func(b *mealibrt.Buffer, n int) {
		if b == nil {
			return
		}
		if err := b.StoreFloat32s(0, make([]float32, n)); err != nil {
			t.Fatalf("store: %v", err)
		}
	}
	storeC := func(b *mealibrt.Buffer, n int) {
		if b == nil {
			return
		}
		if err := b.StoreComplex64s(0, make([]complex64, n)); err != nil {
			t.Fatalf("store: %v", err)
		}
	}
	var p descriptor.Params
	switch op {
	case descriptor.OpAXPY:
		x, y := alloc(64), alloc(64)
		if failed {
			return nil, false
		}
		storeF(x, 16)
		storeF(y, 16)
		p = accel.AxpyArgs{N: 16, Alpha: 1, X: x.PA(), Y: y.PA(), IncX: 1, IncY: 1}.Params()
	case descriptor.OpDOT:
		x, y, out := alloc(64), alloc(64), alloc(64)
		if failed {
			return nil, false
		}
		storeF(x, 16)
		storeF(y, 16)
		p = accel.DotArgs{N: 16, X: x.PA(), Y: y.PA(), Out: out.PA(), IncX: 1, IncY: 1}.Params()
	case descriptor.OpGEMV:
		a, x, y := alloc(64), alloc(16), alloc(16)
		if failed {
			return nil, false
		}
		storeF(a, 16)
		storeF(x, 4)
		p = accel.GemvArgs{M: 4, N: 4, Alpha: 1, Beta: 0, A: a.PA(), Lda: 4, X: x.PA(), Y: y.PA()}.Params()
	case descriptor.OpSPMV:
		rowPtr, colIdx, vals := alloc(64), alloc(64), alloc(64)
		x, y := alloc(16), alloc(16)
		if failed {
			return nil, false
		}
		if err := rowPtr.StoreInt32s(0, []int32{0, 1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
		if err := colIdx.StoreInt32s(0, []int32{0, 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		storeF(vals, 4)
		storeF(x, 4)
		p = accel.SpmvArgs{M: 4, Cols: 4, NNZ: 4,
			RowPtr: rowPtr.PA(), ColIdx: colIdx.PA(), Values: vals.PA(),
			X: x.PA(), Y: y.PA()}.Params()
	case descriptor.OpRESMP:
		src, dst := alloc(128), alloc(128)
		if failed {
			return nil, false
		}
		storeF(src, 8)
		p = accel.ResmpArgs{NIn: 8, NOut: 8, Kind: 0, Src: src.PA(), Dst: dst.PA()}.Params()
	case descriptor.OpFFT:
		src, dst := alloc(128), alloc(128)
		if failed {
			return nil, false
		}
		storeC(src, 16)
		p = accel.FFTArgs{N: 16, HowMany: 1, Src: src.PA(), Dst: dst.PA()}.Params()
	case descriptor.OpRESHP:
		src, dst := alloc(64), alloc(64)
		if failed {
			return nil, false
		}
		storeF(src, 16)
		p = accel.ReshpArgs{Rows: 4, Cols: 4, Elem: accel.ElemF32, Src: src.PA(), Dst: dst.PA()}.Params()
	default:
		return nil, false // unknown opcode: the verifier rejects it anyway
	}
	return p, true
}
