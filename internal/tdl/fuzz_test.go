package tdl

import (
	"testing"

	"mealib/internal/descriptor"
)

// FuzzParse hardens the TDL front end: arbitrary input must never panic,
// and anything that parses must survive Format -> Parse -> Compile.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`PASS { COMP FFT PARAMS "fft.para" }`,
		`LOOP 128 { PASS { COMP DOT PARAMS "dot.para" } }`,
		`LOOP 4 8 16 { PASS { COMP AXPY PARAMS "a" COMP RESHP PARAMS "b" } }`,
		"# comment only",
		`PASS {`,
		`LOOP { PASS { COMP FFT PARAMS "p" } }`,
		`PASS { COMP NOPE PARAMS "p" }`,
		"\x00\xff{}",
		`LOOP 99999999999999999999 { PASS { COMP FFT PARAMS "p" } }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		text := Format(prog)
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\n%q", err, text)
		}
		resolver := func(string) (descriptor.Params, error) { return descriptor.Params{1}, nil }
		d1, err1 := Compile(prog, resolver)
		d2, err2 := Compile(prog2, resolver)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("compile divergence: %v vs %v", err1, err2)
		}
		if err1 == nil && len(d1.Instrs) != len(d2.Instrs) {
			t.Fatalf("instruction count divergence: %d vs %d", len(d1.Instrs), len(d2.Instrs))
		}
	})
}
