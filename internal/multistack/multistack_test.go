package multistack

import (
	"context"
	"fmt"
	"math"
	"testing"

	"mealib/internal/kernels"
	"mealib/internal/mealibrt"
	"mealib/internal/sparse"
	"mealib/internal/telemetry"
	"mealib/internal/units"
)

func testConfig(stacks int) Config {
	rc := mealibrt.DefaultConfig()
	rc.Driver.DataSize = 64 * units.MiB
	return Config{Stacks: stacks, Runtime: rc}
}

// hostIterate is the serial reference: the exact per-row accumulation the
// accelerator kernel performs, iterated with full-vector handoff.
func hostIterate(m *sparse.CSR, x []float32, semiring int64, bias float32, iters int) []float32 {
	cur := append([]float32(nil), x...)
	next := make([]float32, m.Rows)
	for it := 0; it < iters; it++ {
		if err := kernels.SpmvCSRSemiring(m.Rows, m.RowPtr, m.ColIdx, m.Values, cur, next, semiring, bias); err != nil {
			panic(err)
		}
		cur, next = next, cur
	}
	return cur
}

func runSharded(t *testing.T, sys *System, m *sparse.CSR, x []float32, semiring int64, bias float32, iters int) ([]float32, *Sharded) {
	t.Helper()
	sh, err := sys.Shard(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.BuildPlans(semiring, bias); err != nil {
		t.Fatal(err)
	}
	if err := sh.SetX(x); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for it := 0; it < iters; it++ {
		if _, err := sh.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sh.X()
	if err != nil {
		t.Fatal(err)
	}
	return got, sh
}

func bitEqual(t *testing.T, got, want []float32, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %v, want %v (bit-exact)", what, i, got[i], want[i])
		}
	}
}

// TestShardedMatchesSerial is the core differential: the same iterated
// SpMV, sharded over 1, 2 and 4 stacks, must be bit-identical to the
// serial host reference — plus-times and min-plus both.
func TestShardedMatchesSerial(t *testing.T) {
	m, err := sparse.RGG(1<<12, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, m.Rows)
	for i := range x {
		x[i] = float32(i%31)*0.125 - 1
	}
	const iters = 5
	want := hostIterate(m, x, kernels.SemiringPlusTimes, 0.25, iters)

	inf := float32(math.Inf(1))
	xd := make([]float32, m.Rows)
	for i := range xd {
		xd[i] = inf
	}
	xd[7] = 0
	wantDist := hostIterate(m, xd, kernels.SemiringMinPlus, inf, iters)

	for _, stacks := range []int{1, 2, 4} {
		sys, err := New(testConfig(stacks))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := runSharded(t, sys, m, x, kernels.SemiringPlusTimes, 0.25, iters)
		bitEqual(t, got, want, "plus-times")

		sysD, err := New(testConfig(stacks))
		if err != nil {
			t.Fatal(err)
		}
		gotDist, _ := runSharded(t, sysD, m, xd, kernels.SemiringMinPlus, inf, iters)
		bitEqual(t, gotDist, wantDist, "min-plus")
	}
}

// minPlusMatrix gives m unit weights plus a zero diagonal (dist' includes
// the node's own previous distance), the BFS-style relaxation operator.
func minPlusMatrix(t *testing.T, m *sparse.CSR) *sparse.CSR {
	t.Helper()
	var entries []sparse.COO
	for i := 0; i < m.Rows; i++ {
		entries = append(entries, sparse.COO{Row: int32(i), Col: int32(i), Val: 0})
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			entries = append(entries, sparse.COO{Row: int32(i), Col: m.ColIdx[k], Val: 1})
		}
	}
	out, err := sparse.FromCOO(m.Rows, m.Cols, entries)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestShardedMatchesSerialBFSOperator runs the BFS-style relaxation
// operator (unit weights, zero diagonal) sharded over 4 stacks against the
// serial reference.
func TestShardedMatchesSerialBFSOperator(t *testing.T) {
	base, err := sparse.RGG(1<<11, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	m := minPlusMatrix(t, base)
	inf := float32(math.Inf(1))
	x := make([]float32, m.Rows)
	for i := range x {
		x[i] = inf
	}
	x[0] = 0
	const iters = 8
	want := hostIterate(m, x, kernels.SemiringMinPlus, inf, iters)
	sys, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runSharded(t, sys, m, x, kernels.SemiringMinPlus, inf, iters)
	bitEqual(t, got, want, "min-plus shared matrix")
}

// TestTrafficConservation checks the interconnect ledger against the
// sharder's independently derived ghost volumes: per link and per stack,
// bytes sent == bytes received == steps x ghost bytes.
func TestTrafficConservation(t *testing.T) {
	m, err := sparse.RGG(1<<11, 9, 77)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, m.Rows)
	for i := range x {
		x[i] = 1
	}
	const iters = 3
	_, sh := runSharded(t, sys, m, x, kernels.SemiringPlusTimes, 0, iters)
	net := sys.Net()
	var totalGhost units.Bytes
	for d := 0; d < 4; d++ {
		var wantIn units.Bytes
		for s := 0; s < 4; s++ {
			if s == d {
				continue
			}
			g := sh.GhostBytes(d, s)
			wantIn += g
			totalGhost += g
			if got := net.PairBytes(s, d); got != iters*g {
				t.Errorf("link %d->%d carried %d bytes, want %d", s, d, got, iters*g)
			}
		}
		if got := net.BytesReceived(d); got != iters*wantIn {
			t.Errorf("stack %d received %d bytes, want %d", d, got, iters*wantIn)
		}
	}
	if totalGhost == 0 {
		t.Fatal("test graph produced no cross-stack traffic")
	}
	var sent, recvd units.Bytes
	for k := 0; k < 4; k++ {
		sent += net.BytesSent(k)
		recvd += net.BytesReceived(k)
	}
	if sent != recvd {
		t.Errorf("conservation: %d sent, %d received", sent, recvd)
	}
	if got := sh.Stats().ExchangeBytes; got != iters*sh.ExchangeBytesPerStep() {
		t.Errorf("stats counted %d exchange bytes, want %d", got, iters*sh.ExchangeBytesPerStep())
	}
}

// TestRefinementReducesModeledTraffic shards the same banded matrix with
// and without greedy refinement: the refined placement must not move more
// ghost bytes, and on an RGG (locality-ordered, uneven row structure) it
// should typically move fewer.
func TestRefinementReducesModeledTraffic(t *testing.T) {
	m, err := sparse.RGG(1<<12, 12, 99)
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	shBase, err := base.Shard(m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(4)
	cfg.Refine = true
	cfg.RefineWindow = 256
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shRef, err := ref.Shard(m)
	if err != nil {
		t.Fatal(err)
	}
	b0, b1 := shBase.ExchangeBytesPerStep(), shRef.ExchangeBytesPerStep()
	if b1 > b0 {
		t.Errorf("refinement raised modeled traffic: %d -> %d bytes/step", b0, b1)
	}
	t.Logf("ghost bytes/step: row blocks %d, refined %d", b0, b1)
}

// TestModelTimelineAdvances checks the engine clock: each Step adds the
// compute phase (max shard invocation) plus the exchange makespan, and
// iterations with traffic have a non-zero exchange phase.
func TestModelTimelineAdvances(t *testing.T) {
	m, err := sparse.RGG(1<<11, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := sys.Shard(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.BuildPlans(kernels.SemiringPlusTimes, 0); err != nil {
		t.Fatal(err)
	}
	x := make([]float32, m.Rows)
	if err := sh.SetX(x); err != nil {
		t.Fatal(err)
	}
	st, err := sh.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.ComputeTime <= 0 {
		t.Error("compute phase took no model time")
	}
	if sh.ExchangeBytesPerStep() > 0 && st.ExchangeTime <= 0 {
		t.Error("exchange moved bytes in zero model time")
	}
	if got := sys.ModelTime(); !units.CloseTo(float64(got), float64(st.ComputeTime+st.ExchangeTime)) {
		t.Errorf("engine clock %v, want %v", got, st.ComputeTime+st.ExchangeTime)
	}
	if st.Energy <= 0 {
		t.Error("iteration consumed no energy")
	}
}

// TestExchangeTelemetry checks exchange spans land on the xstack track and
// the per-link byte counters mirror the interconnect ledger.
func TestExchangeTelemetry(t *testing.T) {
	m, err := sparse.RGG(1<<10, 8, 21)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2)
	cfg.Tracer = telemetry.New()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, m.Rows)
	_, sh := runSharded(t, sys, m, x, kernels.SemiringPlusTimes, 0, 2)
	if sh.ExchangeBytesPerStep() == 0 {
		t.Fatal("no traffic to trace")
	}
	if cfg.Tracer.Events() == 0 {
		t.Error("no telemetry events recorded")
	}
	reg := cfg.Tracer.Metrics()
	var counted int64
	for s := 0; s < 2; s++ {
		for d := 0; d < 2; d++ {
			counted += reg.Counter(fmt.Sprintf("xstack.bytes.s%d_to_s%d", s, d)).Value()
		}
	}
	if want := int64(sys.Net().TotalBytes()); counted != want {
		t.Errorf("link byte counters sum to %d, ledger says %d", counted, want)
	}
}

func TestShardErrors(t *testing.T) {
	sys, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rect, err := sparse.FromCOO(2, 3, []sparse.COO{{Row: 0, Col: 0, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Shard(rect); err == nil {
		t.Error("non-square matrix accepted")
	}
	m, err := sparse.RGG(64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ShardWith(m, sparse.Partition{Bounds: []int{0, 10, 20, 64}}); err == nil {
		t.Error("3-part partition accepted on 2 stacks")
	}
	sh, err := sys.Shard(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Step(context.Background()); err == nil {
		t.Error("Step before BuildPlans accepted")
	}
	if err := sh.SetX(make([]float32, 3)); err == nil {
		t.Error("wrong-length x accepted")
	}
	if _, err := New(Config{Stacks: 0}); err == nil {
		t.Error("zero stacks accepted")
	}
}
