package multistack

import (
	"context"
	"fmt"

	"mealib/internal/accel"
	"mealib/internal/descriptor"
	"mealib/internal/mealibrt"
	"mealib/internal/sparse"
	"mealib/internal/telemetry"
	"mealib/internal/units"
)

// shard is one stack's slice of the matrix plus its working vectors.
type shard struct {
	stack  int
	lo, hi int // owned row range
	nnz    int
	rowPtr *mealibrt.Buffer // rebased to the shard (rows+1 entries)
	colIdx *mealibrt.Buffer // global column indices
	values *mealibrt.Buffer
	x      *mealibrt.Buffer // full-length working vector (local copy)
	y      *mealibrt.Buffer // owned result segment
	plan   *mealibrt.Plan
}

func (sh *shard) rows() int { return sh.hi - sh.lo }

// Sharded is a CSR matrix distributed across the system's stacks: shard k
// holds its row block's CSR arrays, the full-length working vector x, and
// the owned slice of the result y, all resident on stack k. Column indices
// stay global, so each shard's SpMV is exactly the single-stack kernel
// over its rows — accumulation order and therefore results are unchanged
// by the sharding.
type Sharded struct {
	sys    *System
	n      int
	nnz    int
	part   sparse.Partition
	shards []*shard
	// ghost[d][s] is the modeled exchange volume from stack s to stack d:
	// 4 bytes for every distinct column in shard d's pattern owned by s.
	ghost [][]units.Bytes
	stats RunStats
}

// IterStats is the model outcome of one Step.
type IterStats struct {
	// ComputeTime is the compute phase: the N per-shard launches run
	// concurrently, so it is the maximum invocation time.
	ComputeTime units.Seconds
	// ExchangeTime is the interconnect makespan of the exchange phase.
	ExchangeTime units.Seconds
	// ExchangeBytes is the modeled ghost traffic this iteration.
	ExchangeBytes units.Bytes
	// Energy totals accelerator, invocation-overhead, idle-host and link
	// energy for the iteration.
	Energy units.Joules
}

// RunStats accumulates IterStats across Steps.
type RunStats struct {
	Iterations    int
	Time          units.Seconds
	ComputeTime   units.Seconds
	ExchangeTime  units.Seconds
	ExchangeBytes units.Bytes
	Energy        units.Joules
}

// Shard distributes the matrix: nnz-balanced row blocks (edge-cut-refined
// when the system was configured with Refine), one block per stack, CSR
// arrays rebased per shard and uploaded to the owning stack.
func (s *System) Shard(m *sparse.CSR) (*Sharded, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("multistack: iterated SpMV needs a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	part, err := sparse.RowBlocks(m, s.cfg.Stacks)
	if err != nil {
		return nil, err
	}
	if s.cfg.Refine {
		part, err = sparse.RefineGreedy(m, part, s.cfg.RefineWindow)
		if err != nil {
			return nil, err
		}
	}
	return s.ShardWith(m, part)
}

// ShardWith distributes the matrix under an explicit partition (tests and
// placement experiments).
func (s *System) ShardWith(m *sparse.CSR, part sparse.Partition) (*Sharded, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := part.Validate(m.Rows); err != nil {
		return nil, err
	}
	if part.Parts() != s.cfg.Stacks {
		return nil, fmt.Errorf("multistack: partition has %d parts for %d stacks", part.Parts(), s.cfg.Stacks)
	}
	sh := &Sharded{sys: s, n: m.Rows, nnz: m.NNZ(), part: part}
	// seen marks columns counted into the current shard's ghost volume;
	// stamped with the shard index+1 so it resets without clearing.
	seen := make([]int32, m.Cols)
	for k := 0; k < s.cfg.Stacks; k++ {
		lo, hi := part.Range(k)
		rows := hi - lo
		base := m.RowPtr[lo]
		nnz := int(m.RowPtr[hi] - base)
		rebased := make([]int32, rows+1)
		for i := 0; i <= rows; i++ {
			rebased[i] = m.RowPtr[lo+i] - base
		}
		sd := &shard{stack: k, lo: lo, hi: hi, nnz: nnz}
		var err error
		alloc := func(n units.Bytes) *mealibrt.Buffer {
			if err != nil {
				return nil
			}
			var b *mealibrt.Buffer
			b, err = s.rt.MemAllocOn(k, n)
			return b
		}
		sd.rowPtr = alloc(units.Bytes(4 * (rows + 1)))
		sd.colIdx = alloc(units.Bytes(4 * max(nnz, 1)))
		sd.values = alloc(units.Bytes(4 * max(nnz, 1)))
		sd.x = alloc(units.Bytes(4 * m.Cols))
		sd.y = alloc(units.Bytes(4 * max(rows, 1)))
		if err != nil {
			return nil, fmt.Errorf("multistack: shard %d: %w", k, err)
		}
		if err := sd.rowPtr.StoreInt32s(0, rebased); err != nil {
			return nil, err
		}
		if nnz > 0 {
			if err := sd.colIdx.StoreInt32s(0, m.ColIdx[base:base+int32(nnz)]); err != nil {
				return nil, err
			}
			if err := sd.values.StoreFloat32s(0, m.Values[base:base+int32(nnz)]); err != nil {
				return nil, err
			}
		}
		sh.shards = append(sh.shards, sd)
		// Ghost volume: distinct remote-owned columns this shard gathers.
		ghost := make([]units.Bytes, s.cfg.Stacks)
		stamp := int32(k + 1)
		for e := base; e < base+int32(nnz); e++ {
			c := m.ColIdx[e]
			if seen[c] == stamp {
				continue
			}
			seen[c] = stamp
			owner := part.OwnerOf(int(c))
			if owner != k {
				ghost[owner] += 4
			}
		}
		sh.ghost = append(sh.ghost, ghost)
	}
	return sh, nil
}

// N returns the vector length.
func (sh *Sharded) N() int { return sh.n }

// NNZ returns the matrix non-zero count.
func (sh *Sharded) NNZ() int { return sh.nnz }

// Partition returns the row partition in effect.
func (sh *Sharded) Partition() sparse.Partition { return sh.part }

// GhostBytes returns the modeled per-exchange traffic from stack src into
// stack dst's working vector — what one Step sends over the (src, dst)
// link. The conservation gate compares the interconnect's ledger against
// these independently derived figures.
func (sh *Sharded) GhostBytes(dst, src int) units.Bytes { return sh.ghost[dst][src] }

// ExchangeBytesPerStep returns the total modeled traffic of one exchange.
func (sh *Sharded) ExchangeBytesPerStep() units.Bytes {
	var total units.Bytes
	for d := range sh.ghost {
		for s := range sh.ghost[d] {
			total += sh.ghost[d][s]
		}
	}
	return total
}

// BuildPlans creates the per-shard SPMV plans: shard k's launch runs on
// stack k's accelerator layer over stack-k-resident operands, computing the
// owned slice y_k = semiring-SpMV(A_k, x_k) with each row's accumulator
// seeded by bias. Plans are built once and resubmitted every Step.
func (sh *Sharded) BuildPlans(semiring int64, bias float32) error {
	for _, sd := range sh.shards {
		d := &descriptor.Descriptor{}
		if err := d.AddComp(descriptor.OpSPMV, accel.SpmvArgs{
			M: int64(sd.rows()), Cols: int64(sh.n), NNZ: int64(sd.nnz),
			RowPtr: sd.rowPtr.PA(), ColIdx: sd.colIdx.PA(), Values: sd.values.PA(),
			X: sd.x.PA(), Y: sd.y.PA(),
			Semiring: semiring, Bias: bias,
		}.Params()); err != nil {
			return err
		}
		d.AddEndPass()
		p, err := sh.sys.rt.AccPlanDescriptorOn(sd.stack, d)
		if err != nil {
			return fmt.Errorf("multistack: plan for shard %d: %w", sd.stack, err)
		}
		sd.plan = p
	}
	return nil
}

// SetX seeds every stack's working vector with v (the iteration's x_0).
func (sh *Sharded) SetX(v []float32) error {
	if len(v) != sh.n {
		return fmt.Errorf("multistack: x has %d elements, want %d", len(v), sh.n)
	}
	for _, sd := range sh.shards {
		if err := sd.x.StoreFloat32s(0, v); err != nil {
			return err
		}
	}
	return nil
}

// X reads the current working vector (stack 0's copy; after an exchange all
// copies are identical).
func (sh *Sharded) X() ([]float32, error) {
	return sh.shards[0].x.LoadFloat32s(0, sh.n)
}

// Step runs one iteration: the N shard launches concurrently (compute
// phase), then the exchange — functionally, every updated segment y_k is
// written into every stack's working vector; in the model, each (src, dst)
// ghost transfer is scheduled on the interconnect at the phase start, in
// (src, dst) order, and the phase ends at the latest completion.
func (sh *Sharded) Step(ctx context.Context) (IterStats, error) {
	if sh.shards[0].plan == nil {
		return IterStats{}, fmt.Errorf("multistack: BuildPlans not called")
	}
	s := sh.sys
	// Compute phase: submit all, wait all. Shard footprints are disjoint,
	// so admission overlaps the flights; model time is the slowest shard.
	pending := make([]*mealibrt.PendingInvocation, len(sh.shards))
	for i, sd := range sh.shards {
		pi, err := sd.plan.Submit(ctx)
		if err != nil {
			return IterStats{}, fmt.Errorf("multistack: shard %d submit: %w", i, err)
		}
		pending[i] = pi
	}
	var st IterStats
	for i, pi := range pending {
		inv, err := pi.Wait(ctx)
		if err != nil {
			return IterStats{}, fmt.Errorf("multistack: shard %d: %w", i, err)
		}
		if t := inv.TotalTime(); t > st.ComputeTime {
			st.ComputeTime = t
		}
		st.Energy += inv.TotalEnergy()
	}

	// Functional exchange: whole-segment device copies keep every stack's
	// working vector complete and bit-identical to the serial iteration's
	// x. These are stack-to-stack DMAs — they bypass the host coherence
	// model (no dirty bytes, no wbinvd on the next launch); the
	// interconnect model below prices the traffic they stand for.
	for _, sd := range sh.shards {
		if sd.rows() == 0 {
			continue
		}
		for _, dst := range sh.shards {
			if err := s.rt.DeviceCopyFloat32s(dst.x, units.Bytes(4*sd.lo), sd.y, 0, sd.rows()); err != nil {
				return IterStats{}, err
			}
		}
	}

	// Modeled exchange: ghost transfers scheduled at the phase start in
	// (src, dst) order — deterministic contention on the port timelines.
	linkE0 := s.net.Energy()
	t0 := s.clock + st.ComputeTime
	end := t0
	tb := s.tr.Buffer(telemetry.TrackXStack)
	defer tb.Release()
	for src := range sh.shards {
		busy0 := s.net.EgressBusy(src)
		for dst := range sh.shards {
			b := sh.ghost[dst][src]
			if b == 0 || src == dst {
				continue
			}
			tb.Begin(telemetry.SpanExchange, fmt.Sprintf("exchange s%d->s%d", src, dst))
			_, sendEnd, err := s.net.Send(src, dst, b, t0)
			if err != nil {
				tb.End(telemetry.SpanExchange, 0)
				return IterStats{}, err
			}
			if sendEnd > end {
				end = sendEnd
			}
			st.ExchangeBytes += b
			s.mPairBytes[src][dst].Add(int64(b))
			tb.End2(telemetry.SpanExchange, sendEnd-t0,
				telemetry.Arg{Key: "bytes", Val: int64(b)}, telemetry.Arg{})
		}
		s.mEgressNS[src].Add(int64(float64(s.net.EgressBusy(src)-busy0) * 1e9))
	}
	st.ExchangeTime = end - t0
	st.Energy += s.net.Energy() - linkE0
	s.clock = end

	sh.stats.Iterations++
	sh.stats.Time += st.ComputeTime + st.ExchangeTime
	sh.stats.ComputeTime += st.ComputeTime
	sh.stats.ExchangeTime += st.ExchangeTime
	sh.stats.ExchangeBytes += st.ExchangeBytes
	sh.stats.Energy += st.Energy
	return st, nil
}

// Stats returns the accumulated run statistics.
func (sh *Sharded) Stats() RunStats { return sh.stats }
