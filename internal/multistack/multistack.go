// Package multistack scales MEALib past one memory stack: N simulated
// stacks — each with its own accelerator logic layer — behind one runtime,
// a CSR matrix sharded across them by contiguous row blocks, and an
// inter-stack interconnect model that prices the cross-stack vector
// exchange an iterated sharded SpMV generates. The paper evaluates a single
// stack; this subsystem is the "what came after" evaluation axis (Tesseract
// and its successors): at graph scale the inter-stack links, not per-vault
// bandwidth, bound performance.
//
// Determinism contract: sharding never changes results. Row-block
// partitions keep every row's CSR entry order, each shard's SpMV
// accumulates exactly like the single-stack kernel (float64 per row, entry
// order), and the exchange copies whole result segments — so an iterated
// run is bit-identical to the serial single-stack reference, for any stack
// count and either partitioner. Only the model timeline and energy differ.
//
// Model split: functionally the exchange writes every updated segment into
// every stack's full-length working vector (cheap host copies, bit-exact);
// the interconnect model bills only the ghost bytes — the entries of
// remote-owned segments a shard's column pattern actually references —
// pre-computed per (owner, consumer) pair at shard time. Edge-cut-reducing
// placement therefore reduces modeled traffic, time and energy without
// touching results.
package multistack

import (
	"fmt"

	"mealib/internal/mealibrt"
	"mealib/internal/noc"
	"mealib/internal/telemetry"
	"mealib/internal/units"
)

// Config assembles a multi-stack system.
type Config struct {
	// Stacks is the number of memory stacks (>= 1).
	Stacks int
	// Runtime is the base runtime configuration; its driver stack count is
	// overridden with Stacks. Nil uses mealibrt.DefaultConfig().
	Runtime *mealibrt.Config
	// Net parameterises the inter-stack interconnect. Nil uses
	// noc.MEALibInterStack(Stacks).
	Net *noc.InterStackConfig
	// Refine enables the edge-cut-minimizing greedy boundary refinement on
	// top of the nnz-balanced row blocks.
	Refine bool
	// RefineWindow bounds how far refinement slides each boundary
	// (0: the partitioner's default).
	RefineWindow int
	// Tracer records exchange spans and per-link counters (nil: disabled).
	// It also propagates into the runtime if that has no tracer of its own.
	Tracer *telemetry.Tracer
}

// System is N stacks behind one runtime plus the interconnect timeline.
type System struct {
	cfg Config
	rt  *mealibrt.Runtime
	net *noc.InterStack
	tr  *telemetry.Tracer
	// clock is the engine's model-time frontier: compute phases and
	// exchange phases alternate on it.
	clock units.Seconds
	// mPairBytes[s][d] mirrors the interconnect's per-link byte ledger into
	// the metric registry; mEgressNS[k] is the per-stack port-occupancy
	// counter (nanoseconds of egress serialisation).
	mPairBytes [][]*telemetry.Counter
	mEgressNS  []*telemetry.Counter
}

// New builds the system: a driver with Stacks data spaces, one accelerator
// layer per stack (the runtime does that), and an idle interconnect.
func New(cfg Config) (*System, error) {
	if cfg.Stacks < 1 {
		return nil, fmt.Errorf("multistack: need at least one stack, got %d", cfg.Stacks)
	}
	rc := cfg.Runtime
	if rc == nil {
		rc = mealibrt.DefaultConfig()
	}
	rcCopy := *rc
	rcCopy.Driver.Stacks = cfg.Stacks
	if rcCopy.Tracer == nil {
		rcCopy.Tracer = cfg.Tracer
	}
	rt, err := mealibrt.New(&rcCopy)
	if err != nil {
		return nil, err
	}
	nc := cfg.Net
	if nc == nil {
		nc = noc.MEALibInterStack(cfg.Stacks)
	} else if nc.Stacks != cfg.Stacks {
		return nil, fmt.Errorf("multistack: interconnect spans %d stacks, system has %d", nc.Stacks, cfg.Stacks)
	}
	net, err := noc.NewInterStack(*nc)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, rt: rt, net: net, tr: cfg.Tracer}
	reg := cfg.Tracer.Metrics()
	for src := 0; src < cfg.Stacks; src++ {
		var row []*telemetry.Counter
		for dst := 0; dst < cfg.Stacks; dst++ {
			row = append(row, reg.Counter(fmt.Sprintf("xstack.bytes.s%d_to_s%d", src, dst)))
		}
		s.mPairBytes = append(s.mPairBytes, row)
		s.mEgressNS = append(s.mEgressNS, reg.Counter(fmt.Sprintf("xstack.egress_busy_ns.s%d", src)))
	}
	return s, nil
}

// Runtime exposes the underlying runtime.
func (s *System) Runtime() *mealibrt.Runtime { return s.rt }

// Net exposes the interconnect timeline (counters and conservation checks).
func (s *System) Net() *noc.InterStack { return s.net }

// Stacks returns the stack count.
func (s *System) Stacks() int { return s.cfg.Stacks }

// ModelTime returns the engine's model-time frontier: alternating compute
// phases (max over the concurrent per-shard launches) and exchange phases
// (interconnect makespan).
func (s *System) ModelTime() units.Seconds { return s.clock }
