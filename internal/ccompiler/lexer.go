// Package ccompiler implements the source-to-source compiler of paper §3.4:
// it parses a C subset sufficient for library-based legacy code (the STAP
// listing style: declarations, malloc/free, MKL/FFTW calls, OpenMP
// parallel-for nests), identifies the accelerable library calls, and
// rewrites the program so it runs on MEALib —
//
//	pass 1  library calls -> accelerator control runtime routines plus a
//	        generated TDL program and parameter table, with adjacent
//	        producer/consumer calls chained into one PASS and OpenMP loop
//	        nests compacted into a single LOOP-block descriptor;
//	pass 2  malloc/free of accelerator-visible buffers -> the MEALib
//	        memory management runtime routines.
package ccompiler

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies C tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokChar
	TokPunct
	TokPragma // a whole "#pragma ..." line
)

// Token is one lexed C token.
type Token struct {
	Kind TokKind
	Text string
	Line int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.Text)
}

// multi-character punctuators, longest first.
var punctuators = []string{
	"<<=", ">>=", "...",
	"->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
}

// Lex tokenises C source. Comments are dropped; #pragma lines become
// TokPragma tokens; other preprocessor lines (#include, #define) are
// dropped with their text retained in the token stream as pragmas so the
// emitter can reproduce them.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			j := i + 2
			for j+1 < n && !(src[j] == '*' && src[j+1] == '/') {
				if src[j] == '\n' {
					line++
				}
				j++
			}
			if j+1 >= n {
				return nil, fmt.Errorf("ccompiler: line %d: unterminated comment", line)
			}
			i = j + 2
		case c == '#':
			j := i
			for j < n && src[j] != '\n' {
				// Line continuations.
				if src[j] == '\\' && j+1 < n && src[j+1] == '\n' {
					line++
					j += 2
					continue
				}
				j++
			}
			toks = append(toks, Token{Kind: TokPragma, Text: strings.TrimSpace(src[i:j]), Line: line})
			i = j
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("ccompiler: line %d: unterminated string", line)
			}
			toks = append(toks, Token{Kind: TokString, Text: src[i : j+1], Line: line})
			i = j + 1
		case c == '\'':
			j := i + 1
			for j < n && src[j] != '\'' {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("ccompiler: line %d: unterminated character literal", line)
			}
			toks = append(toks, Token{Kind: TokChar, Text: src[i : j+1], Line: line})
			i = j + 1
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(src[i+1]))):
			j := i
			for j < n && (isIdentChar(src[j]) || src[j] == '.' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[i:j], Line: line})
			i = j
		case isIdentStart(c):
			j := i
			for j < n && isIdentChar(src[j]) {
				j++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[i:j], Line: line})
			i = j
		default:
			matched := false
			for _, p := range punctuators {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				toks = append(toks, Token{Kind: TokPunct, Text: string(c), Line: line})
				i++
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
