package ccompiler

import (
	"fmt"
	"strings"

	"mealib/internal/descriptor"
)

// Options configures a compilation.
type Options struct {
	// Symbols supplies compile-time integer constants (what #define or
	// -D would provide); loop compaction needs concrete trip counts.
	Symbols map[string]int64
}

// BufferDecl records one accelerator-visible buffer discovered in the
// source: either a malloc'ed pointer or a declared array.
type BufferDecl struct {
	Name     string
	ElemSize int64
	// SizeExpr is the malloc byte-size expression ("" for declared arrays).
	SizeExpr string
	// Dims are the declared array dimension expressions (nil for pointers).
	Dims []string
	Line int
}

// LoopLevel is one level of a compacted loop nest.
type LoopLevel struct {
	Var   string
	Count int64
}

// offsetTerm contributes expr*Mult bytes to a buffer field's bind-time base
// offset (constant indices of an element reference).
type offsetTerm struct {
	Expr string
	Mult int64
}

// PlannedCall is one accelerator invocation inside a generated plan.
type PlannedCall struct {
	Sym      *SymCall
	ParamRef string
	// Strides give the per-loop-level byte strides of each buffer field
	// (indexed by field position) when the call sits inside a LOOP.
	Strides map[int][4]int64
	// Offsets give bind-time constant offset terms per buffer field.
	Offsets map[int][]offsetTerm
}

// Plan is one generated accelerator descriptor: a TDL program plus the
// symbolic parameter table its references resolve against.
type Plan struct {
	Name  string
	TDL   string
	Calls []*PlannedCall
	// Loop is the compacted nest (nil for plain passes).
	Loop []LoopLevel
	// CoveredCalls counts the original library calls this plan replaces.
	CoveredCalls int64
}

// Stats summarises a compilation (feeds the §5.5 "17M calls into 3
// descriptors" accounting).
type Stats struct {
	CallSites      int   // accelerable call sites recognised
	CoveredCalls   int64 // dynamic library calls covered by descriptors
	Descriptors    int
	ChainedPasses  int
	CompactedLoops int
	MallocRewrites int
	FreeRewrites   int
}

// Result is a finished source-to-source compilation.
type Result struct {
	Source  string
	Plans   []*Plan
	Buffers map[string]*BufferDecl
	Stats   Stats
}

// compiler carries the walk state.
type compiler struct {
	opts    Options
	rec     *recognizer
	buffers map[string]*BufferDecl
	plans   []*Plan
	stats   Stats
	nparam  int
	errs    []error
}

// Compile runs the source-to-source compiler over a C translation unit.
func Compile(src string, opts Options) (*Result, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	tree, err := ParseC(toks)
	if err != nil {
		return nil, err
	}
	if opts.Symbols == nil {
		opts.Symbols = map[string]int64{}
	}
	c := &compiler{
		opts:    opts,
		rec:     newRecognizer(opts.Symbols),
		buffers: make(map[string]*BufferDecl),
	}
	c.walkBlock(tree)
	if len(c.errs) > 0 {
		return nil, c.errs[0]
	}
	return &Result{
		Source:  Emit(tree),
		Plans:   c.plans,
		Buffers: c.buffers,
		Stats:   c.stats,
	}, nil
}

// elemSizeOf maps C element types to byte sizes.
func elemSizeOf(typ string) (int64, bool) {
	switch typ {
	case "float", "int", "int32_t", "unsigned", "MKL_INT":
		return 4, true
	case "double", "complex", "fftwf_complex", "MKL_Complex8", "long", "int64_t", "size_t":
		return 8, true
	}
	return 0, false
}

// walkBlock processes one statement block.
func (c *compiler) walkBlock(blk *BlockNode) {
	// Process the block in program order: declarations, plan records,
	// malloc/free rewrites, loop compaction, and the chaining optimization
	// over runs of adjacent accelerated calls (paper §3.4 pass 1).
	var run []callSite
	flush := func() {
		if len(run) == 0 {
			return
		}
		syms := make([]*SymCall, len(run))
		nodes := make([]*Simple, len(run))
		for k, r := range run {
			syms[k] = r.sym
			nodes[k] = r.node
		}
		c.emitPassPlan(run[0].node, syms, nodes)
		if len(run) > 1 {
			c.stats.ChainedPasses++
		}
		run = nil
	}
	for i, n := range blk.Nodes {
		switch v := n.(type) {
		case *Simple:
			if c.scanDeclaration(v) || c.scanIodimInit(v) || c.scanPlanDecl(v) ||
				c.scanMalloc(v) || c.scanFree(v) {
				flush()
				continue
			}
			call, ok := parseCallStmt(v.Toks)
			if !ok {
				flush()
				continue
			}
			sym, err := c.rec.recognise(call)
			if err != nil {
				c.errs = append(c.errs, fmt.Errorf("ccompiler: %w", err))
				flush()
				continue
			}
			if sym == nil {
				flush()
				continue
			}
			if len(run) > 0 && !chainable(run[len(run)-1].sym, sym) {
				flush()
			}
			run = append(run, callSite{node: v, sym: sym})
		case *BracedNode:
			flush()
			c.walkBlock(v.Body)
		case *ForNode:
			flush()
			// An OpenMP parallel-for pragma directly above marks the nest.
			if i > 0 {
				if pl, ok := blk.Nodes[i-1].(*PragmaLine); ok &&
					strings.Contains(pl.Text, "omp") && strings.Contains(pl.Text, "for") {
					v.OMP = true
				}
			}
			if !c.tryCompactLoop(v, v, nil) {
				c.walkBlock(v.Body)
			}
		case *PragmaLine:
			// Pragmas do not break a chainable run.
		}
	}
	flush()
}

// callSite pairs a recognised call with its statement node.
type callSite struct {
	node *Simple
	sym  *SymCall
}

// chainable reports whether the first call's output buffer is the second
// call's input buffer.
func chainable(a, b *SymCall) bool {
	for _, oi := range a.OutBufs {
		for _, ii := range b.InBufs {
			if a.Fields[oi].Buf.Name != "" && a.Fields[oi].Buf.Name == b.Fields[ii].Buf.Name {
				return true
			}
		}
	}
	return false
}

// scanDeclaration records array declarations like "float a[N][M];" and
// pointer declarations like "float *x;".
func (c *compiler) scanDeclaration(s *Simple) bool {
	toks := s.Toks
	if len(toks) < 2 || toks[0].Kind != TokIdent {
		return false
	}
	elem, ok := elemSizeOf(toks[0].Text)
	if !ok {
		return false
	}
	i := 1
	// Optional "complex" as in "float complex".
	if toks[i].Kind == TokIdent && toks[i].Text == "complex" {
		elem = 8
		i++
	}
	pointer := false
	for i < len(toks) && toks[i].Kind == TokPunct && toks[i].Text == "*" {
		pointer = true
		i++
	}
	if i >= len(toks) || toks[i].Kind != TokIdent {
		return false
	}
	name := toks[i].Text
	i++
	var dims []string
	for i < len(toks) && toks[i].Kind == TokPunct && toks[i].Text == "[" {
		depth := 0
		var dim []Token
		for ; i < len(toks); i++ {
			if toks[i].Kind == TokPunct && toks[i].Text == "[" {
				depth++
				if depth == 1 {
					continue
				}
			}
			if toks[i].Kind == TokPunct && toks[i].Text == "]" {
				depth--
				if depth == 0 {
					i++
					break
				}
			}
			dim = append(dim, toks[i])
		}
		dims = append(dims, renderTokens(dim))
	}
	// Anything left (initialisers, extra declarators) keeps the statement
	// as-is; we only record the shape.
	if len(dims) == 0 && !pointer {
		return false // plain scalar declaration
	}
	c.buffers[name] = &BufferDecl{Name: name, ElemSize: elem, Dims: dims, Line: toks[0].Line}
	return false // declaration text is kept verbatim
}

// scanIodimInit records fftwf_iodim array initialisers:
// "fftwf_iodim dims[] = { {a,b,c}, {d,e,f} };"
func (c *compiler) scanIodimInit(s *Simple) bool {
	toks := s.Toks
	if len(toks) < 4 || toks[0].Kind != TokIdent || !strings.Contains(toks[0].Text, "iodim") {
		return false
	}
	if toks[1].Kind != TokIdent {
		return false
	}
	name := toks[1].Text
	eq := -1
	for i, t := range toks {
		if t.Kind == TokPunct && t.Text == "=" {
			eq = i
			break
		}
	}
	if eq < 0 {
		return false
	}
	// Parse { {a,b,c}, ... }.
	var triples [][3]string
	var cur []string
	var field []Token
	depth := 0
	for _, t := range toks[eq+1:] {
		if t.Kind == TokPunct {
			switch t.Text {
			case "{":
				depth++
				continue
			case "}":
				if depth == 2 {
					cur = append(cur, renderTokens(field))
					field = nil
					if len(cur) == 3 {
						triples = append(triples, [3]string{cur[0], cur[1], cur[2]})
					}
					cur = nil
				}
				depth--
				continue
			case ",":
				if depth == 2 {
					cur = append(cur, renderTokens(field))
					field = nil
					continue
				}
				if depth == 1 {
					continue
				}
			}
		}
		if depth == 2 {
			field = append(field, t)
		}
	}
	if len(triples) == 0 {
		return false
	}
	c.rec.dims[name] = triples
	return false // keep the declaration in the output
}

// scanPlanDecl records "plan = fftwf_plan_guru_dft(...)" statements and
// comments them out (the plan is folded into the descriptor).
func (c *compiler) scanPlanDecl(s *Simple) bool {
	call, ok := parseCallStmt(s.Toks)
	if !ok || call.name != "fftwf_plan_guru_dft" || call.target == "" {
		return false
	}
	if len(call.args) != 8 {
		c.errs = append(c.errs, fmt.Errorf("ccompiler: line %d: fftwf_plan_guru_dft expects 8 args, got %d", call.line, len(call.args)))
		return true
	}
	rank, err := EvalInt(call.args[0], c.opts.Symbols)
	if err != nil {
		c.errs = append(c.errs, fmt.Errorf("ccompiler: line %d: plan rank: %w", call.line, err))
		return true
	}
	in, oki := parseBufRef(call.args[4])
	out, oko := parseBufRef(call.args[5])
	if !oki || !oko {
		c.errs = append(c.errs, fmt.Errorf("ccompiler: line %d: plan buffers not recognisable", call.line))
		return true
	}
	// The declarator may carry a type ("fftwf_plan p = ..."): use the last
	// identifier of the target as the plan name.
	nameToks := strings.Fields(call.target)
	name := nameToks[len(nameToks)-1]
	c.rec.plans[name] = &fftwPlan{
		rank:        rank,
		dims:        strings.TrimSpace(call.args[1]),
		howmanyDims: strings.TrimSpace(call.args[3]),
		in:          in,
		out:         out,
	}
	s.replacement = []string{fmt.Sprintf("/* MEALib: plan %q folded into an accelerator descriptor */", name)}
	return true
}

// scanMalloc rewrites "x = malloc(size)" (with optional cast) to
// mealib_mem_alloc and records the buffer.
func (c *compiler) scanMalloc(s *Simple) bool {
	call, ok := parseCallStmt(s.Toks)
	if !ok || call.name != "malloc" || call.target == "" || len(call.args) != 1 {
		return false
	}
	nameToks := strings.Fields(strings.ReplaceAll(call.target, "*", " "))
	name := nameToks[len(nameToks)-1]
	decl := c.buffers[name]
	if decl == nil {
		decl = &BufferDecl{Name: name, ElemSize: 4, Line: call.line}
		c.buffers[name] = decl
	}
	decl.SizeExpr = call.args[0]
	s.replacement = []string{fmt.Sprintf("%s = mealib_mem_alloc(%s); /* MEALib: physically contiguous */", call.target, call.args[0])}
	c.stats.MallocRewrites++
	return true
}

// scanFree rewrites "free(x)" for known buffers.
func (c *compiler) scanFree(s *Simple) bool {
	call, ok := parseCallStmt(s.Toks)
	if !ok || call.name != "free" || len(call.args) != 1 {
		return false
	}
	name := strings.TrimSpace(call.args[0])
	if _, known := c.buffers[name]; !known {
		return false
	}
	s.replacement = []string{fmt.Sprintf("mealib_mem_free(%s);", name)}
	c.stats.FreeRewrites++
	return true
}

// forHeader extracts (var, count) from a canonical "v = lo; v < hi; ++v"
// header.
func (c *compiler) forHeader(f *ForNode) (string, int64, bool) {
	init, cond, post := f.Init, f.Cond, f.Post
	// init: [type] var = expr
	vi := 0
	if len(init) >= 2 && init[0].Kind == TokIdent {
		if _, isType := elemSizeOf(init[0].Text); isType && init[1].Kind == TokIdent {
			vi = 1
		}
	}
	if len(init) < vi+3 || init[vi].Kind != TokIdent ||
		init[vi+1].Kind != TokPunct || init[vi+1].Text != "=" {
		return "", 0, false
	}
	v := init[vi].Text
	lo, err := EvalInt(renderTokens(init[vi+2:]), c.opts.Symbols)
	if err != nil {
		return "", 0, false
	}
	// cond: var < expr
	if len(cond) < 3 || cond[0].Kind != TokIdent || cond[0].Text != v ||
		cond[1].Kind != TokPunct || cond[1].Text != "<" {
		return "", 0, false
	}
	hi, err := EvalInt(renderTokens(cond[2:]), c.opts.Symbols)
	if err != nil {
		return "", 0, false
	}
	// post: ++v, v++, v += 1
	okPost := false
	switch {
	case len(post) == 2 && post[0].Kind == TokPunct && post[0].Text == "++" && post[1].Text == v:
		okPost = true
	case len(post) == 2 && post[1].Kind == TokPunct && post[1].Text == "++" && post[0].Text == v:
		okPost = true
	case len(post) == 3 && post[0].Text == v && post[1].Text == "+=" && post[2].Text == "1":
		okPost = true
	}
	if !okPost || hi <= lo {
		return "", 0, false
	}
	return v, hi - lo, true
}

// tryCompactLoop flattens a perfect loop nest whose innermost body is a
// single accelerated call into one LOOP-block descriptor (paper §3.4:
// "more than 16M function calls of cblas_cdotc_sub are finally translated
// into only one accelerator invocation").
func (c *compiler) tryCompactLoop(root, f *ForNode, outer []LoopLevel) bool {
	v, count, ok := c.forHeader(f)
	if !ok {
		return false
	}
	levels := append(append([]LoopLevel(nil), outer...), LoopLevel{Var: v, Count: count})
	if len(levels) > descriptor.MaxLoopLevels {
		return false
	}
	// The body must be either a deeper loop or a run of accelerated calls
	// that chain into one pass (the SAR RESMP->FFT pattern inside a loop).
	var inner []Node
	for _, n := range f.Body.Nodes {
		if _, isPragma := n.(*PragmaLine); !isPragma {
			inner = append(inner, n)
		}
	}
	if len(inner) == 0 {
		return false
	}
	if nested, ok := inner[0].(*ForNode); ok && len(inner) == 1 {
		return c.tryCompactLoop(root, nested, levels)
	}
	var pcs []*PlannedCall
	var prev *SymCall
	for _, node := range inner {
		stmt, ok := node.(*Simple)
		if !ok {
			return false
		}
		call, ok := parseCallStmt(stmt.Toks)
		if !ok {
			return false
		}
		sym, err := c.rec.recognise(call)
		if err != nil || sym == nil {
			return false
		}
		if prev != nil && !chainable(prev, sym) {
			return false // multiple statements must form one datapath
		}
		pc, ok := c.deriveStrides(sym, levels)
		if !ok {
			return false
		}
		pcs = append(pcs, pc)
		prev = sym
	}
	c.emitLoopPlan(root, pcs, levels)
	return true
}

// deriveStrides computes per-level byte strides for each buffer field of a
// compacted call: a loop variable used as index k of a buffer advances the
// base address by elemSize times the product of the dimensions to the
// right of axis k.
func (c *compiler) deriveStrides(sym *SymCall, levels []LoopLevel) (*PlannedCall, bool) {
	loopVar := func(expr string) int {
		for li, l := range levels {
			if strings.TrimSpace(expr) == l.Var {
				return li
			}
		}
		return -1
	}
	usesAnyVar := func(expr string) bool {
		toks, err := Lex(expr)
		if err != nil {
			return true
		}
		for _, t := range toks {
			if t.Kind == TokIdent {
				for _, l := range levels {
					if t.Text == l.Var {
						return true
					}
				}
			}
		}
		return false
	}
	pc := &PlannedCall{
		Sym:     sym,
		Strides: make(map[int][4]int64),
		Offsets: make(map[int][]offsetTerm),
	}
	base := descriptor.MaxLoopLevels - len(levels)
	for fi, field := range sym.Fields {
		if field.Kind != FieldBuf {
			if usesAnyVar(field.Expr) {
				return nil, false // a size/scalar parameter varies per iteration
			}
			continue
		}
		ref := field.Buf
		if len(ref.Index) == 0 {
			continue // bare pointer: no per-iteration movement
		}
		decl := c.buffers[ref.Name]
		if decl == nil || len(decl.Dims) < len(ref.Index) {
			return nil, false
		}
		// suffix[k]: elements spanned by one step of axis k.
		suffix := make([]int64, len(ref.Index))
		prod := int64(1)
		for k := len(ref.Index) - 1; k >= 0; k-- {
			suffix[k] = prod
			dim, err := EvalInt(decl.Dims[len(decl.Dims)-len(ref.Index)+k], c.opts.Symbols)
			if err != nil {
				// Unknown trailing dims only matter left of this axis.
				if k > 0 {
					return nil, false
				}
			}
			prod *= dim
		}
		var strides [4]int64
		for k, ixExpr := range ref.Index {
			mult := decl.ElemSize * suffix[k]
			if li := loopVar(ixExpr); li >= 0 {
				strides[base+li] += mult
				continue
			}
			if usesAnyVar(ixExpr) {
				return nil, false // e.g. a[i+1]: not a bare var, not constant
			}
			if strings.TrimSpace(ixExpr) != "0" {
				pc.Offsets[fi] = append(pc.Offsets[fi], offsetTerm{Expr: ixExpr, Mult: mult})
			}
		}
		if strides != [4]int64{} {
			pc.Strides[fi] = strides
		}
	}
	return pc, true
}

// emitPassPlan replaces a run of (possibly chained) call statements with
// one accelerator plan.
func (c *compiler) emitPassPlan(first *Simple, syms []*SymCall, nodes []*Simple) {
	plan := &Plan{Name: fmt.Sprintf("__mealib_plan_%d", len(c.plans))}
	var comps []string
	for _, sym := range syms {
		ref := fmt.Sprintf("p%d.para", c.nparam)
		c.nparam++
		plan.Calls = append(plan.Calls, &PlannedCall{
			Sym: sym, ParamRef: ref,
			Strides: map[int][4]int64{},
			Offsets: c.constOffsets(sym),
		})
		comps = append(comps, fmt.Sprintf("COMP %s PARAMS %q", sym.Op, ref))
		c.stats.CallSites++
	}
	plan.TDL = "PASS { " + strings.Join(comps, " ") + " }"
	plan.CoveredCalls = int64(len(syms))
	c.stats.CoveredCalls += plan.CoveredCalls
	c.stats.Descriptors++
	c.plans = append(c.plans, plan)

	names := make([]string, len(syms))
	for i, s := range syms {
		names[i] = s.Name
	}
	first.replacement = []string{
		fmt.Sprintf("/* MEALib: %s -> %s */", strings.Join(names, " + "), plan.Name),
		fmt.Sprintf("acc_plan %s = mealib_acc_plan(%q, NULL, 0, NULL, 0);", plan.Name, plan.TDL),
		fmt.Sprintf("mealib_acc_execute(%s);", plan.Name),
		fmt.Sprintf("mealib_acc_destroy(%s);", plan.Name),
	}
	for _, n := range nodes[1:] {
		n.replacement = []string{fmt.Sprintf("/* MEALib: chained into %s */", plan.Name)}
	}
}

// constOffsets derives the constant index offsets of a non-loop call.
func (c *compiler) constOffsets(sym *SymCall) map[int][]offsetTerm {
	out := make(map[int][]offsetTerm)
	for fi, field := range sym.Fields {
		if field.Kind != FieldBuf || len(field.Buf.Index) == 0 {
			continue
		}
		decl := c.buffers[field.Buf.Name]
		if decl == nil || len(decl.Dims) < len(field.Buf.Index) {
			continue
		}
		suffix := make([]int64, len(field.Buf.Index))
		prod := int64(1)
		for k := len(field.Buf.Index) - 1; k >= 0; k-- {
			suffix[k] = prod
			if dim, err := EvalInt(decl.Dims[len(decl.Dims)-len(field.Buf.Index)+k], c.opts.Symbols); err == nil {
				prod *= dim
			}
		}
		for k, ix := range field.Buf.Index {
			if strings.TrimSpace(ix) != "0" {
				out[fi] = append(out[fi], offsetTerm{Expr: ix, Mult: decl.ElemSize * suffix[k]})
			}
		}
	}
	return out
}

// emitLoopPlan replaces a compacted loop nest with one LOOP-block plan
// whose single pass chains every call in the nest body.
func (c *compiler) emitLoopPlan(f *ForNode, pcs []*PlannedCall, levels []LoopLevel) {
	plan := &Plan{Name: fmt.Sprintf("__mealib_plan_%d", len(c.plans)), Loop: levels}
	var comps []string
	var names []string
	for _, pc := range pcs {
		ref := fmt.Sprintf("p%d.para", c.nparam)
		c.nparam++
		pc.ParamRef = ref
		comps = append(comps, fmt.Sprintf("COMP %s PARAMS %q", pc.Sym.Op, ref))
		names = append(names, pc.Sym.Name)
		c.stats.CallSites++
	}
	plan.Calls = pcs
	counts := make([]string, len(levels))
	total := int64(1)
	for i, l := range levels {
		counts[i] = fmt.Sprintf("%d", l.Count)
		total *= l.Count
	}
	plan.TDL = fmt.Sprintf("LOOP %s { PASS { %s } }",
		strings.Join(counts, " "), strings.Join(comps, " "))
	plan.CoveredCalls = total * int64(len(pcs))
	c.stats.CoveredCalls += plan.CoveredCalls
	c.stats.Descriptors++
	c.stats.CompactedLoops++
	if len(pcs) > 1 {
		c.stats.ChainedPasses++
	}
	c.plans = append(c.plans, plan)

	f.replacement = []string{
		fmt.Sprintf("/* MEALib: %d calls of %s compacted into one LOOP descriptor */",
			plan.CoveredCalls, strings.Join(names, " + ")),
		fmt.Sprintf("acc_plan %s = mealib_acc_plan(%q, NULL, 0, NULL, 0);", plan.Name, plan.TDL),
		fmt.Sprintf("mealib_acc_execute(%s);", plan.Name),
		fmt.Sprintf("mealib_acc_destroy(%s);", plan.Name),
	}
}
