package ccompiler

import (
	"os"
	"testing"

	"mealib/internal/analysis/tdlcheck"
	"mealib/internal/tdl"
)

// FuzzCompile hardens the C front end: arbitrary input must never panic;
// anything that compiles must emit source that still lexes and parses,
// and every TDL program the compiler generates must parse and pass the
// structural half of the static verifier — the compiler must never hand
// the runtime a malformed program.
func FuzzCompile(f *testing.F) {
	stap, err := os.ReadFile("testdata/stap.c")
	if err != nil {
		f.Fatal(err)
	}
	sarSrc, err := os.ReadFile("testdata/sar.c")
	if err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		string(stap),
		string(sarSrc),
		`void f(void) { float *x; x = malloc(64); free(x); }`,
		`int main() { for (i = 0; i < 10; ++i) work(i); }`,
		`#pragma omp parallel for`,
		`x = "unterminated`,
		`/* unterminated`,
		`void f() { int a[2] = { {1,2}, {3,4} }; }`,
		"{}{}{};;;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	syms := map[string]int64{
		"N_CHAN": 2, "N_PULSES": 2, "N_RANGE": 4, "N_DOP": 2,
		"N_BLOCKS": 2, "N_STEERING": 2, "TDOF": 1,
		"TDOF_NCHAN": 2, "TBS": 2, "CELL_DIM": 4,
		"N_ROWS": 2, "RAW_WIDTH": 4, "WIDTH": 2, "task": 0,
		"NULL": 0, "FFTW_FORWARD": 0, "FFTW_WISDOM_ONLY": 0, "i": 0, "n": 4,
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Compile(src, Options{Symbols: syms})
		if err != nil {
			return
		}
		toks, err := Lex(res.Source)
		if err != nil {
			t.Fatalf("transformed source does not lex: %v", err)
		}
		if _, err := ParseC(toks); err != nil {
			t.Fatalf("transformed source does not parse: %v", err)
		}
		for _, plan := range res.Plans {
			prog, err := tdl.Parse(plan.TDL)
			if err != nil {
				t.Fatalf("generated TDL for %s does not parse: %v\n%s", plan.Name, err, plan.TDL)
			}
			if err := tdlcheck.VerifyProgram(prog); err != nil {
				t.Fatalf("generated TDL for %s rejected by the verifier: %v\n%s", plan.Name, err, plan.TDL)
			}
		}
	})
}

// FuzzEvalInt hardens the expression evaluator.
func FuzzEvalInt(f *testing.F) {
	for _, s := range []string{"1+2*3", "(N)", "1/0", "-(-4)", "1 <<", "a%b", "((("} {
		f.Add(s)
	}
	syms := map[string]int64{"N": 7, "a": 10, "b": 3}
	f.Fuzz(func(t *testing.T, expr string) {
		_, _ = EvalInt(expr, syms) // must not panic
	})
}
