package ccompiler

import (
	"context"
	"math/cmplx"
	"math/rand"
	"os"
	"testing"

	"mealib/internal/accel"
	"mealib/internal/kernels"
	"mealib/internal/mealibrt"
	"mealib/internal/phys"
	"mealib/internal/tdl"
	"mealib/internal/units"
)

// TestSTAPEndToEnd is the paper's whole pitch in one test: the legacy C
// program is compiled by the source-to-source compiler, its generated plans
// are bound to MEALib buffers and executed on the simulated accelerator
// layer, and the numeric results match a direct reference computation.
func TestSTAPEndToEnd(t *testing.T) {
	syms := stapSymbols()
	nChan, nPulses, nRange := int(syms["N_CHAN"]), int(syms["N_PULSES"]), int(syms["N_RANGE"])
	nDop, nBlocks, nSteering := int(syms["N_DOP"]), int(syms["N_BLOCKS"]), int(syms["N_STEERING"])
	tdofNChan, tbs, cellDim := int(syms["TDOF_NCHAN"]), int(syms["TBS"]), int(syms["CELL_DIM"])

	src, err := os.ReadFile("testdata/stap.c")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(string(src), Options{Symbols: syms})
	if err != nil {
		t.Fatal(err)
	}

	rt, err := mealibrt.New(mealibrt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Allocate every compiler-discovered buffer through the MEALib memory
	// management runtime (what the rewritten mallocs would do).
	rng := rand.New(rand.NewSource(42))
	elems := map[string]int{
		"datacube":                    nChan * nPulses * nRange,
		"datacube_pulse_major_padded": nChan * nPulses * nRange,
		"datacube_doppler_major":      nChan * nPulses * nRange,
		"adaptive_weights":            nDop * nBlocks * nSteering * tdofNChan,
		"snapshots":                   nDop * nBlocks * cellDim,
		"prods":                       nDop * nBlocks * nSteering * tbs,
		"gamma_weight":                nDop * nBlocks * tdofNChan,
		"acc_weight":                  tdofNChan,
	}
	complexBuf := map[string]bool{
		"datacube": true, "datacube_pulse_major_padded": true,
		"datacube_doppler_major": true, "adaptive_weights": true,
		"snapshots": true, "prods": true,
	}
	binding := &Binding{
		Buffers: map[string]BoundBuffer{},
		Ints:    syms,
	}
	bufs := map[string]*mealibrt.Buffer{}
	data := map[string][]complex64{}
	fdata := map[string][]float32{}
	for name, n := range elems {
		size := units.Bytes(4 * n)
		if complexBuf[name] {
			size = units.Bytes(8 * n)
		}
		b, err := rt.MemAlloc(size)
		if err != nil {
			t.Fatalf("alloc %s: %v", name, err)
		}
		bufs[name] = b
		binding.Buffers[name] = BoundBuffer{PA: b.PA(), Elems: int64(n)}
		if complexBuf[name] {
			v := make([]complex64, n)
			for i := range v {
				v[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
			}
			data[name] = v
			if err := b.StoreComplex64s(0, v); err != nil {
				t.Fatal(err)
			}
		} else {
			v := make([]float32, n)
			for i := range v {
				v[i] = float32(rng.NormFloat64())
			}
			fdata[name] = v
			if err := b.StoreFloat32s(0, v); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Execute the three generated plans in program order.
	for _, plan := range res.Plans {
		tdlSrc, params, err := Bind(plan, binding)
		if err != nil {
			t.Fatalf("%s: %v", plan.Name, err)
		}
		p, err := rt.AccPlan(tdlSrc, params)
		if err != nil {
			t.Fatalf("%s: %v", plan.Name, err)
		}
		if _, err := p.Execute(context.Background()); err != nil {
			t.Fatalf("%s: %v", plan.Name, err)
		}
		if err := p.Destroy(); err != nil {
			t.Fatal(err)
		}
	}

	// Reference computation in plain Go.
	// Plan 0: rank-0 guru copy = complex transpose N_RANGE x (N_PULSES*N_CHAN),
	// then batched FFT of length N_DOP over N_RANGE*N_CHAN transforms.
	rows, cols := nRange, nPulses*nChan
	wantPulse := make([]complex64, rows*cols)
	dc := data["datacube"]
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			wantPulse[j*rows+i] = dc[i*cols+j]
		}
	}
	wantDoppler := append([]complex64(nil), wantPulse...)
	plan, err := kernels.NewFFTPlan(nDop, kernels.Forward)
	if err != nil {
		t.Fatal(err)
	}
	if err := kernels.FFTBatch(plan, wantDoppler, nRange*nChan); err != nil {
		t.Fatal(err)
	}
	gotDoppler, err := bufs["datacube_doppler_major"].LoadComplex64s(0, len(wantDoppler))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantDoppler {
		if cmplx.Abs(complex128(gotDoppler[i]-wantDoppler[i])) > 1e-3 {
			t.Fatalf("doppler[%d] = %v, want %v", i, gotDoppler[i], wantDoppler[i])
		}
	}

	// Plan 1: 16K cdotc calls over the 4-level nest.
	weights := data["adaptive_weights"]
	snaps := data["snapshots"]
	gotProds, err := bufs["prods"].LoadComplex64s(0, elems["prods"])
	if err != nil {
		t.Fatal(err)
	}
	for dop := 0; dop < nDop; dop++ {
		for block := 0; block < nBlocks; block++ {
			for sv := 0; sv < nSteering; sv++ {
				for cell := 0; cell < tbs; cell++ {
					wOff := ((dop*nBlocks+block)*nSteering + sv) * tdofNChan
					sOff := (dop*nBlocks + block) * cellDim
					var want complex64
					for k := 0; k < tdofNChan; k++ {
						w := weights[wOff+k]
						s := snaps[sOff+cell+k*tbs]
						want += complex(real(w), -imag(w)) * s
					}
					pOff := ((dop*nBlocks+block)*nSteering+sv)*tbs + cell
					if cmplx.Abs(complex128(gotProds[pOff]-want)) > 1e-3 {
						t.Fatalf("prods[%d][%d][%d][%d] = %v, want %v",
							dop, block, sv, cell, gotProds[pOff], want)
					}
				}
			}
		}
	}

	// Plan 2: saxpy accumulation across the (dop, block) nest.
	wantAcc := append([]float32(nil), fdata["acc_weight"]...)
	gw := fdata["gamma_weight"]
	for dop := 0; dop < nDop; dop++ {
		for block := 0; block < nBlocks; block++ {
			off := (dop*nBlocks + block) * tdofNChan
			for k := 0; k < tdofNChan; k++ {
				wantAcc[k] += gw[off+k]
			}
		}
	}
	gotAcc, err := bufs["acc_weight"].LoadFloat32s(0, tdofNChan)
	if err != nil {
		t.Fatal(err)
	}
	for k := range wantAcc {
		if diff := gotAcc[k] - wantAcc[k]; diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("acc_weight[%d] = %v, want %v", k, gotAcc[k], wantAcc[k])
		}
	}

	// Invocation accounting: 3 plans -> 3 invocations (the §5.5 compaction).
	if got := rt.Stats().Invocations; got != 3 {
		t.Errorf("invocations = %d, want 3", got)
	}
}

func TestBindErrors(t *testing.T) {
	res := compileSTAP(t)
	if _, _, err := Bind(res.Plans[0], nil); err == nil {
		t.Error("nil binding must fail")
	}
	if _, _, err := Bind(res.Plans[0], &Binding{Buffers: map[string]BoundBuffer{}, Ints: stapSymbols()}); err == nil {
		t.Error("unbound buffers must fail")
	}
	// Missing symbols fail too.
	b := &Binding{Buffers: map[string]BoundBuffer{"datacube": {}, "datacube_pulse_major_padded": {}, "datacube_doppler_major": {}}}
	if _, _, err := Bind(res.Plans[0], b); err == nil {
		t.Error("missing symbols must fail")
	}
}

// TestPaperScaleModelExecution binds the paper-scale STAP plans to nominal
// addresses and evaluates them analytically: a 16.8M-iteration LOOP
// descriptor models in microseconds of wall time and reports hours... of
// nothing — the right accelerator time for gigabytes of inner products.
func TestPaperScaleModelExecution(t *testing.T) {
	syms := map[string]int64{
		"N_CHAN": 8, "N_PULSES": 256, "N_RANGE": 4096, "N_DOP": 256,
		"N_BLOCKS": 16, "N_STEERING": 64, "TDOF": 4,
		"TDOF_NCHAN": 32, "TBS": 64, "CELL_DIM": 64 * 32,
		"NULL": 0, "FFTW_FORWARD": 0, "FFTW_WISDOM_ONLY": 0,
	}
	src, err := os.ReadFile("testdata/stap.c")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(string(src), Options{Symbols: syms})
	if err != nil {
		t.Fatal(err)
	}
	// Nominal physical placement (the model never dereferences).
	binding := &Binding{Buffers: map[string]BoundBuffer{}, Ints: syms}
	base := int64(0x1_0000_0000)
	for name := range res.Buffers {
		binding.Buffers[name] = BoundBuffer{PA: phys.Addr(base), Elems: 1 << 24}
		base += 1 << 28
	}
	layer, err := accel.NewLayer(accel.MEALibConfig())
	if err != nil {
		t.Fatal(err)
	}
	var comps int64
	var accelTime float64
	for _, plan := range res.Plans {
		tdlSrc, params, err := Bind(plan, binding)
		if err != nil {
			t.Fatalf("%s: %v", plan.Name, err)
		}
		d, err := tdl.CompileString(tdlSrc, tdl.MapResolver(params))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := layer.RunModel(d)
		if err != nil {
			t.Fatal(err)
		}
		comps += rep.Comps
		accelTime += float64(rep.Time)
	}
	if comps != res.Stats.CoveredCalls {
		t.Errorf("modelled activations %d != covered calls %d", comps, res.Stats.CoveredCalls)
	}
	// 16.8M cdotc of length 32 move ~17 GB: tens of milliseconds at
	// 510 GB/s, not seconds and not microseconds.
	if accelTime < 10e-3 || accelTime > 1 {
		t.Errorf("paper-scale accelerator time = %.3fs, expected tens of ms", accelTime)
	}
}
