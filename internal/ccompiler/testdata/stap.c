/* Legacy STAP kernel in the style of the paper's Listing 1: MKL + FFTW +
 * OpenMP. The MEALib source-to-source compiler rewrites this file; nothing
 * here knows about accelerators. Problem-size macros (N_DOP etc.) are
 * supplied as -D symbols. */
#include <stdlib.h>
#include <complex.h>
#include <mkl.h>
#include <fftw3.h>

void stap_pipeline(void) {
  float complex *datacube;
  float complex *datacube_pulse_major_padded;
  float complex *datacube_doppler_major;
  int dop;
  int block;
  int sv;
  int cell;

  /* data allocation */
  datacube = malloc(8 * N_CHAN * N_PULSES * N_RANGE);
  datacube_pulse_major_padded = malloc(8 * N_RANGE * N_PULSES * N_CHAN);
  datacube_doppler_major = malloc(8 * N_RANGE * N_PULSES * N_CHAN);

  /* data copy with the FFTW guru interface (rank 0 -> pure reshape) */
  fftwf_iodim howmany_dims_ct[3] = { {N_RANGE, 1, 1}, {N_PULSES, 1, 1}, {N_CHAN, 1, 1} };
  fftwf_iodim dims[1] = { {N_DOP, 1, 1} };
  fftwf_iodim howmany_dims[2] = { {N_RANGE, 1, 1}, {N_CHAN, 1, 1} };

  fftwf_plan plan_ct = fftwf_plan_guru_dft(0, NULL, 3, howmany_dims_ct,
      datacube, datacube_pulse_major_padded, FFTW_FORWARD, FFTW_WISDOM_ONLY);
  fftwf_plan plan_fft = fftwf_plan_guru_dft(1, dims, 2, howmany_dims,
      datacube_pulse_major_padded, datacube_doppler_major, FFTW_FORWARD, FFTW_WISDOM_ONLY);

  /* batched FFT operation, chained behind the data copy */
  fftwf_execute(plan_ct);
  fftwf_execute(plan_fft);

  /* multiple parallel inner products */
  float complex adaptive_weights[N_DOP][N_BLOCKS][N_STEERING][TDOF_NCHAN];
  float complex snapshots[N_DOP][N_BLOCKS][CELL_DIM];
  float complex prods[N_DOP][N_BLOCKS][N_STEERING][TBS];

#pragma omp parallel for num_threads(4) private(dop, block, sv, cell)
  for (dop = 0; dop < N_DOP; ++dop)
    for (block = 0; block < N_BLOCKS; ++block)
      for (sv = 0; sv < N_STEERING; ++sv)
        for (cell = 0; cell < TBS; ++cell)
          cblas_cdotc_sub(TDOF_NCHAN,
              &adaptive_weights[dop][block][sv][0], 1,
              &snapshots[dop][block][cell], TBS,
              &prods[dop][block][sv][cell]);

  /* weight accumulation */
  float gamma_weight[N_DOP][N_BLOCKS][TDOF_NCHAN];
  float acc_weight[TDOF_NCHAN];
  for (dop = 0; dop < N_DOP; ++dop)
    for (block = 0; block < N_BLOCKS; ++block)
      cblas_saxpy(TDOF_NCHAN, 1.0f, &gamma_weight[dop][block][0], 1, acc_weight, 1);

  free(datacube);
  free(datacube_pulse_major_padded);
  free(datacube_doppler_major);
}
