/* SAR image formation in the style of the paper's §5.4 chaining study:
 * every row is range-interpolated with the MKL data-fitting API and then
 * Fourier transformed. The compiler should compact the row loop into ONE
 * LOOP descriptor whose pass chains RESMP and FFT. */
#include <stdlib.h>
#include <complex.h>
#include <mkl.h>
#include <fftw3.h>

void sar_form_image(void) {
  float raw[N_ROWS][RAW_WIDTH];
  float image[N_ROWS][WIDTH];
  int r;

  for (r = 0; r < N_ROWS; ++r) {
    dfsInterpolate1D(task, RAW_WIDTH, &raw[r][0], WIDTH, &image[r][0]);
    dfsInterpolate1D(task, WIDTH, &image[r][0], WIDTH, &image[r][0]);
  }
}
