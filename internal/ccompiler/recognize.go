package ccompiler

import (
	"fmt"
	"strings"

	"mealib/internal/descriptor"
)

// BufRef is a symbolic reference to (an element of) a user buffer.
type BufRef struct {
	Name string
	// Index holds the index expressions of a[...][...]... access (empty
	// for the bare pointer).
	Index []string
}

// String renders the reference.
func (b BufRef) String() string {
	s := b.Name
	for _, ix := range b.Index {
		s += "[" + ix + "]"
	}
	return s
}

// FieldKind classifies a symbolic parameter field.
type FieldKind int

// Field kinds.
const (
	FieldInt  FieldKind = iota // integer expression
	FieldF32                   // float expression
	FieldBuf                   // buffer address
	FieldZero                  // reserved / stride placeholder
)

// SymField is one accelerator parameter before binding.
type SymField struct {
	Kind FieldKind
	Expr string
	Buf  BufRef
}

func intField(expr string) SymField { return SymField{Kind: FieldInt, Expr: expr} }
func f32Field(expr string) SymField { return SymField{Kind: FieldF32, Expr: expr} }
func bufField(b BufRef) SymField    { return SymField{Kind: FieldBuf, Buf: b} }

// SymCall is one recognised, accelerable library call with its parameters
// laid out in the target accelerator's argument order (stride fields are
// appended by the binder).
type SymCall struct {
	Op   descriptor.OpCode
	Name string // original API name
	Line int
	// Fields are the non-stride parameter fields in accel-args order.
	Fields []SymField
	// InBufs/OutBufs index into Fields: which fields are input and output
	// buffers (used by the chaining optimization).
	InBufs, OutBufs []int
	// StrideBufs index the fields that take per-loop-level strides when the
	// call is compacted into a LOOP, in the order the accel args expect the
	// stride groups.
	StrideBufs []int
}

// call is a syntactic function call split into argument expressions.
type call struct {
	name   string
	args   []string
	target string // assignment target expression, "" if none
	line   int
}

// parseCallStmt recognises "target = name(args);" or "name(args);" in a
// simple statement's tokens.
func parseCallStmt(toks []Token) (*call, bool) {
	if len(toks) < 3 {
		return nil, false
	}
	// Find the call head: IDENT '(' at top level, possibly after "tgt =".
	eq := -1
	depth := 0
	for i, t := range toks {
		if t.Kind == TokPunct {
			switch t.Text {
			case "(", "[":
				depth++
			case ")", "]":
				depth--
			case "=":
				if depth == 0 && eq == -1 {
					eq = i
				}
			}
		}
	}
	start := 0
	target := ""
	if eq > 0 {
		target = renderTokens(toks[:eq])
		start = eq + 1
	}
	rest := toks[start:]
	// Skip a leading cast: "(float complex *) malloc(...)".
	if len(rest) > 0 && rest[0].Kind == TokPunct && rest[0].Text == "(" {
		depth := 0
		close := -1
		for i, t := range rest {
			if t.Kind != TokPunct {
				continue
			}
			if t.Text == "(" {
				depth++
			} else if t.Text == ")" {
				depth--
				if depth == 0 {
					close = i
					break
				}
			}
		}
		// A cast contains a '*' (pointer type) and is followed by the call.
		isCast := false
		for _, t := range rest[:close+1] {
			if t.Kind == TokPunct && t.Text == "*" {
				isCast = true
			}
		}
		if close > 0 && isCast && close+1 < len(rest) && rest[close+1].Kind == TokIdent {
			rest = rest[close+1:]
		}
	}
	if len(rest) < 3 || rest[0].Kind != TokIdent ||
		rest[1].Kind != TokPunct || rest[1].Text != "(" {
		return nil, false
	}
	if rest[len(rest)-1].Kind != TokPunct || rest[len(rest)-1].Text != ")" {
		return nil, false
	}
	c := &call{name: rest[0].Text, target: target, line: rest[0].Line}
	// Split args on top-level commas.
	depth = 0
	var cur []Token
	for _, t := range rest[2 : len(rest)-1] {
		if t.Kind == TokPunct {
			switch t.Text {
			case "(", "[":
				depth++
			case ")", "]":
				depth--
			case ",":
				if depth == 0 {
					c.args = append(c.args, renderTokens(cur))
					cur = nil
					continue
				}
			}
		}
		cur = append(cur, t)
	}
	if len(cur) > 0 {
		c.args = append(c.args, renderTokens(cur))
	}
	return c, true
}

// parseBufRef parses expressions like "x", "&x[i][0]", "a + off" (the last
// is rejected), returning the buffer reference.
func parseBufRef(expr string) (BufRef, bool) {
	s := strings.TrimSpace(expr)
	s = strings.TrimPrefix(s, "&")
	s = strings.TrimSpace(s)
	// Strip a leading cast "( type * )".
	for strings.HasPrefix(s, "(") {
		close := strings.Index(s, ")")
		if close < 0 {
			return BufRef{}, false
		}
		inner := s[1:close]
		if strings.ContainsAny(inner, "*") || isSimpleIdent(inner) {
			// Either a cast or a parenthesised identifier; for the latter,
			// unwrap only if the close paren ends the string.
			if strings.ContainsAny(inner, "*") {
				s = strings.TrimSpace(s[close+1:])
				continue
			}
		}
		break
	}
	name := s
	var index []string
	if i := strings.IndexByte(s, '['); i >= 0 {
		name = strings.TrimSpace(s[:i])
		rest := s[i:]
		for len(rest) > 0 {
			if rest[0] != '[' {
				return BufRef{}, false
			}
			depth := 0
			j := 0
			for ; j < len(rest); j++ {
				if rest[j] == '[' {
					depth++
				} else if rest[j] == ']' {
					depth--
					if depth == 0 {
						break
					}
				}
			}
			if j >= len(rest) {
				return BufRef{}, false
			}
			index = append(index, strings.TrimSpace(rest[1:j]))
			rest = rest[j+1:]
		}
	}
	if !isSimpleIdent(name) {
		return BufRef{}, false
	}
	return BufRef{Name: name, Index: index}, true
}

// stripDeref removes a leading '&' or '*' from an argument expression.
func stripDeref(expr string) string {
	s := strings.TrimSpace(expr)
	s = strings.TrimPrefix(s, "&")
	s = strings.TrimPrefix(s, "*")
	return strings.TrimSpace(s)
}

// fftwPlan records one fftwf_plan_guru_dft call site.
type fftwPlan struct {
	rank        int64
	dims        string // dims array variable name ("" for rank 0)
	howmanyDims string
	in, out     BufRef
}

// recognizer turns calls into SymCalls. It carries the symbol table (for
// ranks and dim-array initializers collected during the walk).
type recognizer struct {
	syms  map[string]int64
	dims  map[string][][3]string // iodim array name -> {n, is, os} triples
	plans map[string]*fftwPlan
}

func newRecognizer(syms map[string]int64) *recognizer {
	return &recognizer{
		syms:  syms,
		dims:  make(map[string][][3]string),
		plans: make(map[string]*fftwPlan),
	}
}

// AcceleratedAPIs lists the library entry points the compiler recognises
// (paper Table 1 plus the STAP complex calls).
func AcceleratedAPIs() []string {
	return []string{
		"cblas_saxpy", "cblas_sdot", "cblas_sgemv", "mkl_scsrgemv", "mkl_cspblas_scsrgemv",
		"dfsInterpolate1D", "fftwf_execute", "mkl_simatcopy", "cblas_cdotc_sub",
	}
}

// recognise maps one call to a SymCall, or returns nil if the call is not
// accelerable (unknown API or unsupported argument shape).
func (r *recognizer) recognise(c *call) (*SymCall, error) {
	switch c.name {
	case "cblas_saxpy":
		// cblas_saxpy(n, alpha, x, incx, y, incy)
		if len(c.args) != 6 {
			return nil, fmt.Errorf("line %d: cblas_saxpy expects 6 args, got %d", c.line, len(c.args))
		}
		x, okx := parseBufRef(c.args[2])
		y, oky := parseBufRef(c.args[4])
		if !okx || !oky {
			return nil, nil
		}
		return &SymCall{
			Op: descriptor.OpAXPY, Name: c.name, Line: c.line,
			Fields: []SymField{
				intField(c.args[0]), f32Field(c.args[1]),
				bufField(x), bufField(y),
				intField(c.args[3]), intField(c.args[5]),
			},
			InBufs: []int{2, 3}, OutBufs: []int{3}, StrideBufs: []int{2, 3},
		}, nil
	case "cblas_sdot":
		// r = cblas_sdot(n, x, incx, y, incy)
		if len(c.args) != 5 {
			return nil, fmt.Errorf("line %d: cblas_sdot expects 5 args, got %d", c.line, len(c.args))
		}
		x, okx := parseBufRef(c.args[1])
		y, oky := parseBufRef(c.args[3])
		if !okx || !oky {
			return nil, nil
		}
		out := BufRef{Name: "__ret"}
		if c.target != "" {
			if o, ok := parseBufRef(c.target); ok {
				out = o
			}
		}
		return &SymCall{
			Op: descriptor.OpDOT, Name: c.name, Line: c.line,
			Fields: []SymField{
				intField(c.args[0]), intField("0"), // complex=0
				bufField(x), bufField(y), bufField(out),
				intField(c.args[2]), intField(c.args[4]),
			},
			InBufs: []int{2, 3}, OutBufs: []int{4}, StrideBufs: []int{2, 3, 4},
		}, nil
	case "cblas_cdotc_sub":
		// cblas_cdotc_sub(n, x, incx, y, incy, &out)
		if len(c.args) != 6 {
			return nil, fmt.Errorf("line %d: cblas_cdotc_sub expects 6 args, got %d", c.line, len(c.args))
		}
		x, okx := parseBufRef(c.args[1])
		y, oky := parseBufRef(c.args[3])
		out, oko := parseBufRef(c.args[5])
		if !okx || !oky || !oko {
			return nil, nil
		}
		return &SymCall{
			Op: descriptor.OpDOT, Name: c.name, Line: c.line,
			Fields: []SymField{
				intField(c.args[0]), intField("1"), // complex=1
				bufField(x), bufField(y), bufField(out),
				intField(c.args[2]), intField(c.args[4]),
			},
			InBufs: []int{2, 3}, OutBufs: []int{4}, StrideBufs: []int{2, 3, 4},
		}, nil
	case "cblas_sgemv":
		// cblas_sgemv(order, trans, m, n, alpha, a, lda, x, incx, beta, y, incy)
		if len(c.args) != 12 {
			return nil, fmt.Errorf("line %d: cblas_sgemv expects 12 args, got %d", c.line, len(c.args))
		}
		if !strings.Contains(c.args[0], "RowMajor") || !strings.Contains(c.args[1], "NoTrans") {
			return nil, nil // only the row-major no-transpose accelerator exists
		}
		a, oka := parseBufRef(c.args[5])
		x, okx := parseBufRef(c.args[7])
		y, oky := parseBufRef(c.args[10])
		if !oka || !okx || !oky {
			return nil, nil
		}
		if strings.TrimSpace(c.args[8]) != "1" || strings.TrimSpace(c.args[11]) != "1" {
			return nil, nil // accelerator handles unit strides
		}
		return &SymCall{
			Op: descriptor.OpGEMV, Name: c.name, Line: c.line,
			Fields: []SymField{
				intField(c.args[2]), intField(c.args[3]),
				f32Field(c.args[4]), f32Field(c.args[9]),
				bufField(a), intField(c.args[6]),
				bufField(x), bufField(y),
			},
			InBufs: []int{4, 6}, OutBufs: []int{7}, StrideBufs: []int{4, 6, 7},
		}, nil
	case "mkl_scsrgemv", "mkl_cspblas_scsrgemv":
		// mkl_cspblas_scsrgemv(&transa, &m, a, ia, ja, x, y)
		if len(c.args) != 7 {
			return nil, fmt.Errorf("line %d: %s expects 7 args, got %d", c.line, c.name, len(c.args))
		}
		vals, okv := parseBufRef(c.args[2])
		ia, oki := parseBufRef(c.args[3])
		ja, okj := parseBufRef(c.args[4])
		x, okx := parseBufRef(c.args[5])
		y, oky := parseBufRef(c.args[6])
		if !okv || !oki || !okj || !okx || !oky {
			return nil, nil
		}
		m := stripDeref(c.args[1])
		return &SymCall{
			Op: descriptor.OpSPMV, Name: c.name, Line: c.line,
			Fields: []SymField{
				intField(m),
				intField("__cols_" + x.Name),
				intField("__nnz_" + vals.Name),
				bufField(ia), bufField(ja), bufField(vals),
				bufField(x), bufField(y),
			},
			InBufs: []int{3, 4, 5, 6}, OutBufs: []int{7},
		}, nil
	case "dfsInterpolate1D":
		// dfsInterpolate1D(task, nin, src, nout, dst) — simplified data
		// fitting call shape.
		if len(c.args) != 5 {
			return nil, fmt.Errorf("line %d: dfsInterpolate1D expects 5 args, got %d", c.line, len(c.args))
		}
		src, oks := parseBufRef(c.args[2])
		dst, okd := parseBufRef(c.args[4])
		if !oks || !okd {
			return nil, nil
		}
		return &SymCall{
			Op: descriptor.OpRESMP, Name: c.name, Line: c.line,
			Fields: []SymField{
				intField(c.args[1]), intField(c.args[3]), intField("0"), // linear
				bufField(src), bufField(dst),
			},
			InBufs: []int{3}, OutBufs: []int{4}, StrideBufs: []int{3, 4},
		}, nil
	case "mkl_simatcopy":
		// mkl_simatcopy(ordering, trans, rows, cols, alpha, AB, lda, ldb)
		if len(c.args) != 8 {
			return nil, fmt.Errorf("line %d: mkl_simatcopy expects 8 args, got %d", c.line, len(c.args))
		}
		ab, ok := parseBufRef(c.args[5])
		if !ok {
			return nil, nil
		}
		return &SymCall{
			Op: descriptor.OpRESHP, Name: c.name, Line: c.line,
			Fields: []SymField{
				intField(c.args[2]), intField(c.args[3]), intField("0"), // f32
				bufField(ab), bufField(ab),
			},
			InBufs: []int{3}, OutBufs: []int{4},
		}, nil
	case "fftwf_execute":
		// fftwf_execute(plan) with the plan recorded earlier.
		if len(c.args) != 1 {
			return nil, fmt.Errorf("line %d: fftwf_execute expects 1 arg", c.line)
		}
		plan, ok := r.plans[strings.TrimSpace(c.args[0])]
		if !ok {
			return nil, fmt.Errorf("line %d: fftwf_execute of unknown plan %q", c.line, c.args[0])
		}
		return r.planCall(c, plan)
	default:
		return nil, nil
	}
}

// planCall lowers an fftwf plan execution: rank 0 guru plans are data
// copies (RESHP), rank >= 1 are batched FFTs (paper §3.1, challenge 3).
func (r *recognizer) planCall(c *call, plan *fftwPlan) (*SymCall, error) {
	if plan.rank == 0 {
		// Data reshape: howmany dims give the copy geometry; the first two
		// levels are the transposed plane.
		hd := r.dims[plan.howmanyDims]
		if len(hd) < 2 {
			return nil, fmt.Errorf("line %d: reshape plan needs >= 2 howmany dims", c.line)
		}
		rows, cols := hd[0][0], hd[1][0]
		extra := "1"
		if len(hd) > 2 {
			extra = hd[2][0]
		}
		return &SymCall{
			Op: descriptor.OpRESHP, Name: "fftwf_execute(guru-copy)", Line: c.line,
			Fields: []SymField{
				intField(rows), intField("(" + cols + ")*(" + extra + ")"), intField("1"), // complex
				bufField(plan.in), bufField(plan.out),
			},
			InBufs: []int{3}, OutBufs: []int{4},
		}, nil
	}
	dims := r.dims[plan.dims]
	if len(dims) < 1 {
		return nil, fmt.Errorf("line %d: fft plan has no dims initializer", c.line)
	}
	n := dims[0][0]
	howMany := "1"
	for _, hd := range r.dims[plan.howmanyDims] {
		howMany = "(" + howMany + ")*(" + hd[0] + ")"
	}
	return &SymCall{
		Op: descriptor.OpFFT, Name: "fftwf_execute(fft)", Line: c.line,
		Fields: []SymField{
			intField(n), intField("0"), intField(howMany),
			bufField(plan.in), bufField(plan.out),
		},
		InBufs: []int{3}, OutBufs: []int{4}, StrideBufs: []int{3, 4},
	}, nil
}
