package ccompiler

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// EvalInt evaluates an integer C expression (literals, symbols, + - * / %
// and parentheses) against a symbol table. The compiler uses it for loop
// bounds and size expressions; the binder reuses it for parameter fields.
func EvalInt(expr string, syms map[string]int64) (int64, error) {
	toks, err := Lex(expr)
	if err != nil {
		return 0, err
	}
	// Strip the EOF token.
	toks = toks[:len(toks)-1]
	e := &evaluator{toks: toks, syms: syms}
	v, err := e.addSub()
	if err != nil {
		return 0, err
	}
	if e.pos != len(e.toks) {
		return 0, fmt.Errorf("ccompiler: trailing tokens in expression %q", expr)
	}
	return v, nil
}

type evaluator struct {
	toks []Token
	pos  int
	syms map[string]int64
}

func (e *evaluator) peek() (Token, bool) {
	if e.pos >= len(e.toks) {
		return Token{}, false
	}
	return e.toks[e.pos], true
}

func (e *evaluator) addSub() (int64, error) {
	v, err := e.mulDiv()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := e.peek()
		if !ok || t.Kind != TokPunct || (t.Text != "+" && t.Text != "-") {
			return v, nil
		}
		e.pos++
		rhs, err := e.mulDiv()
		if err != nil {
			return 0, err
		}
		if t.Text == "+" {
			v += rhs
		} else {
			v -= rhs
		}
	}
}

func (e *evaluator) mulDiv() (int64, error) {
	v, err := e.unary()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := e.peek()
		if !ok || t.Kind != TokPunct || (t.Text != "*" && t.Text != "/" && t.Text != "%" && t.Text != "<<" && t.Text != ">>") {
			return v, nil
		}
		e.pos++
		rhs, err := e.unary()
		if err != nil {
			return 0, err
		}
		switch t.Text {
		case "*":
			v *= rhs
		case "/":
			if rhs == 0 {
				return 0, fmt.Errorf("ccompiler: division by zero in expression")
			}
			v /= rhs
		case "%":
			if rhs == 0 {
				return 0, fmt.Errorf("ccompiler: modulo by zero in expression")
			}
			v %= rhs
		case "<<":
			v <<= uint(rhs)
		case ">>":
			v >>= uint(rhs)
		}
	}
}

func (e *evaluator) unary() (int64, error) {
	t, ok := e.peek()
	if !ok {
		return 0, fmt.Errorf("ccompiler: unexpected end of expression")
	}
	switch {
	case t.Kind == TokPunct && t.Text == "-":
		e.pos++
		v, err := e.unary()
		return -v, err
	case t.Kind == TokPunct && t.Text == "+":
		e.pos++
		return e.unary()
	case t.Kind == TokPunct && t.Text == "(":
		e.pos++
		v, err := e.addSub()
		if err != nil {
			return 0, err
		}
		c, ok := e.peek()
		if !ok || c.Kind != TokPunct || c.Text != ")" {
			return 0, fmt.Errorf("ccompiler: missing ')' in expression")
		}
		e.pos++
		return v, nil
	case t.Kind == TokNumber:
		e.pos++
		v, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSuffix(t.Text, "L"), "U"), 0, 64)
		if err != nil {
			return 0, fmt.Errorf("ccompiler: bad integer literal %q", t.Text)
		}
		return v, nil
	case t.Kind == TokIdent:
		e.pos++
		if v, ok := e.syms[t.Text]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("ccompiler: unknown symbol %q in expression", t.Text)
	default:
		return 0, fmt.Errorf("ccompiler: unexpected token %s in expression", t)
	}
}

// EvalF32 evaluates a float expression: a literal, a symbol, or an integer
// expression.
func EvalF32(expr string, ints map[string]int64, floats map[string]float32) (float32, error) {
	trimmed := strings.TrimSpace(expr)
	if v, ok := floats[trimmed]; ok {
		return v, nil
	}
	if f, err := strconv.ParseFloat(strings.TrimSuffix(trimmed, "f"), 32); err == nil {
		return float32(f), nil
	}
	if v, err := EvalInt(trimmed, ints); err == nil {
		return float32(v), nil
	}
	return 0, fmt.Errorf("ccompiler: cannot evaluate float expression %q", expr)
}

// isSimpleIdent reports whether expr is a bare identifier.
func isSimpleIdent(expr string) bool {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return false
	}
	for i, r := range expr {
		if i == 0 && !(r == '_' || unicode.IsLetter(r)) {
			return false
		}
		if i > 0 && !(r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)) {
			return false
		}
	}
	return true
}
