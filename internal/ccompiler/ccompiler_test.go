package ccompiler

import (
	"os"
	"strings"
	"testing"

	"mealib/internal/accel"
	"mealib/internal/descriptor"
	"mealib/internal/phys"
)

// stapSymbols are the -D constants for testdata/stap.c (small sizes so the
// end-to-end test executes quickly).
func stapSymbols() map[string]int64 {
	return map[string]int64{
		"N_CHAN": 4, "N_PULSES": 8, "N_RANGE": 16, "N_DOP": 8,
		"N_BLOCKS": 2, "N_STEERING": 4, "TDOF": 2,
		"TDOF_NCHAN": 8, "TBS": 16, "CELL_DIM": 16 * 8,
		"NULL": 0, "FFTW_FORWARD": 0, "FFTW_WISDOM_ONLY": 0,
	}
}

func compileSTAP(t *testing.T) *Result {
	t.Helper()
	src, err := os.ReadFile("testdata/stap.c")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(string(src), Options{Symbols: stapSymbols()})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`int x = 42; /* c */ float y; // line
#pragma omp parallel for
s = "str;{}"; c = 'a';`)
	if err != nil {
		t.Fatal(err)
	}
	var idents, pragmas, strs int
	for _, tk := range toks {
		switch tk.Kind {
		case TokIdent:
			idents++
		case TokPragma:
			pragmas++
		case TokString:
			strs++
		}
	}
	if pragmas != 1 {
		t.Errorf("pragmas = %d, want 1", pragmas)
	}
	if strs != 1 {
		t.Errorf("strings = %d, want 1", strs)
	}
	if idents < 5 {
		t.Errorf("idents = %d", idents)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex(`/* unterminated`); err == nil {
		t.Error("unterminated comment must fail")
	}
	if _, err := Lex(`"unterminated`); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := Lex(`'u`); err == nil {
		t.Error("unterminated char must fail")
	}
}

func TestParseCAndEmitRoundTrip(t *testing.T) {
	src := `
int main(void) {
  int i;
  for (i = 0; i < 10; ++i) {
    work(i);
  }
  if (x > 0) {
    y = x;
  }
  int arr[2] = { {1,2}, {3,4} };
  return 0;
}
`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := ParseC(toks)
	if err != nil {
		t.Fatal(err)
	}
	out := Emit(tree)
	// The emitted source must reparse to the same structure.
	toks2, err := Lex(out)
	if err != nil {
		t.Fatalf("emitted source does not lex: %v\n%s", err, out)
	}
	if _, err := ParseC(toks2); err != nil {
		t.Fatalf("emitted source does not parse: %v\n%s", err, out)
	}
	if !strings.Contains(out, "for (i = 0; i < 10; ++ i)") && !strings.Contains(out, "for (i = 0; i < 10; ++i)") {
		t.Errorf("for loop lost:\n%s", out)
	}
}

func TestParseCErrors(t *testing.T) {
	bad := []string{
		`int main() { `,    // missing }
		`}`,                // stray }
		`for (i = 0) x();`, // bad for header
		`x = 1`,            // missing ;
	}
	for _, src := range bad {
		toks, err := Lex(src)
		if err != nil {
			continue
		}
		if _, err := ParseC(toks); err == nil {
			t.Errorf("ParseC(%q) must fail", src)
		}
	}
}

func TestEvalInt(t *testing.T) {
	syms := map[string]int64{"N": 10, "M": 3}
	cases := map[string]int64{
		"42":          42,
		"N":           10,
		"N * M":       30,
		"N + M * 2":   16,
		"(N + M) * 2": 26,
		"N - M":       7,
		"N / M":       3,
		"N % M":       1,
		"-N":          -10,
		"1 << 4":      16,
		"N * (M + 1)": 40,
	}
	for expr, want := range cases {
		got, err := EvalInt(expr, syms)
		if err != nil || got != want {
			t.Errorf("EvalInt(%q) = %d, %v; want %d", expr, got, err, want)
		}
	}
	if _, err := EvalInt("Q", syms); err == nil {
		t.Error("unknown symbol must fail")
	}
	if _, err := EvalInt("1/0", syms); err == nil {
		t.Error("division by zero must fail")
	}
	if _, err := EvalInt("1 +", syms); err == nil {
		t.Error("truncated expression must fail")
	}
}

func TestEvalF32(t *testing.T) {
	if v, err := EvalF32("1.5f", nil, nil); err != nil || v != 1.5 {
		t.Errorf("1.5f = %v, %v", v, err)
	}
	if v, err := EvalF32("alpha", nil, map[string]float32{"alpha": 2.5}); err != nil || v != 2.5 {
		t.Errorf("alpha = %v, %v", v, err)
	}
	if v, err := EvalF32("3", map[string]int64{}, nil); err != nil || v != 3 {
		t.Errorf("3 = %v, %v", v, err)
	}
	if _, err := EvalF32("wat", nil, nil); err == nil {
		t.Error("unresolvable float must fail")
	}
}

func TestParseBufRef(t *testing.T) {
	cases := []struct {
		in   string
		name string
		idx  int
	}{
		{"x", "x", 0},
		{"&x", "x", 0},
		{"&a[i][0]", "a", 2},
		{"a[i + 1]", "a", 1},
		{"(float *) buf", "buf", 0},
	}
	for _, c := range cases {
		ref, ok := parseBufRef(c.in)
		if !ok || ref.Name != c.name || len(ref.Index) != c.idx {
			t.Errorf("parseBufRef(%q) = %+v, %v", c.in, ref, ok)
		}
	}
	if _, ok := parseBufRef("a + b"); ok {
		t.Error("pointer arithmetic must not parse as a buffer ref")
	}
}

func TestSTAPCompileStructure(t *testing.T) {
	res := compileSTAP(t)
	// Paper §5.5: the STAP library calls compact into 3 descriptors.
	if res.Stats.Descriptors != 3 {
		t.Fatalf("descriptors = %d, want 3\n%s", res.Stats.Descriptors, res.Describe())
	}
	if res.Stats.ChainedPasses != 1 {
		t.Errorf("chained passes = %d, want 1 (reshape+fft)", res.Stats.ChainedPasses)
	}
	if res.Stats.CompactedLoops != 2 {
		t.Errorf("compacted loops = %d, want 2 (cdotc nest, saxpy nest)", res.Stats.CompactedLoops)
	}
	if res.Stats.MallocRewrites != 3 || res.Stats.FreeRewrites != 3 {
		t.Errorf("malloc/free rewrites = %d/%d, want 3/3", res.Stats.MallocRewrites, res.Stats.FreeRewrites)
	}
	// Dynamic call coverage: 2 fftw executes + 8*2*4*16 cdotc + 8*2 saxpy.
	wantCovered := int64(2 + 8*2*4*16 + 8*2)
	if res.Stats.CoveredCalls != wantCovered {
		t.Errorf("covered calls = %d, want %d", res.Stats.CoveredCalls, wantCovered)
	}

	// Plan 0: chained RESHP+FFT.
	p0 := res.Plans[0]
	if len(p0.Calls) != 2 || p0.Calls[0].Sym.Op != descriptor.OpRESHP || p0.Calls[1].Sym.Op != descriptor.OpFFT {
		t.Fatalf("plan 0 = %s", p0.TDL)
	}
	if !strings.Contains(p0.TDL, "PASS") || strings.Contains(p0.TDL, "LOOP") {
		t.Errorf("plan 0 TDL = %s", p0.TDL)
	}
	// Plan 1: the 4-level cdotc LOOP.
	p1 := res.Plans[1]
	if p1.Calls[0].Sym.Op != descriptor.OpDOT || len(p1.Loop) != 4 {
		t.Fatalf("plan 1 = %s (loop %v)", p1.TDL, p1.Loop)
	}
	if p1.CoveredCalls != 8*2*4*16 {
		t.Errorf("plan 1 covers %d calls", p1.CoveredCalls)
	}
	// Plan 2: the 2-level saxpy LOOP.
	p2 := res.Plans[2]
	if p2.Calls[0].Sym.Op != descriptor.OpAXPY || len(p2.Loop) != 2 {
		t.Fatalf("plan 2 = %s (loop %v)", p2.TDL, p2.Loop)
	}

	// Transformed source shape.
	if !strings.Contains(res.Source, "mealib_mem_alloc") {
		t.Error("malloc not rewritten")
	}
	if !strings.Contains(res.Source, "mealib_mem_free") {
		t.Error("free not rewritten")
	}
	if !strings.Contains(res.Source, "mealib_acc_execute(__mealib_plan_1)") {
		t.Errorf("plan execution missing:\n%s", res.Source)
	}
	if strings.Contains(res.Source, "cblas_cdotc_sub(") {
		t.Error("compacted loop body still present in output")
	}
	if strings.Contains(res.Source, "for (sv") {
		t.Error("compacted nest levels still present in output")
	}
	if !strings.Contains(res.Source, "#pragma omp parallel for") {
		t.Error("unrelated pragmas must be preserved")
	}
}

func TestSTAPStrideDerivation(t *testing.T) {
	res := compileSTAP(t)
	p1 := res.Plans[1] // cdotc loop: levels (dop, block, sv, cell)
	pc := p1.Calls[0]
	const elem = 8 // complex64
	// adaptive_weights[N_DOP][N_BLOCKS][N_STEERING][TDOF_NCHAN]: field 2.
	wantW := [4]int64{elem * 2 * 4 * 8, elem * 4 * 8, elem * 8, 0}
	if got := pc.Strides[2]; got != wantW {
		t.Errorf("weights strides = %v, want %v", got, wantW)
	}
	// snapshots[N_DOP][N_BLOCKS][CELL_DIM]: field 3, cell advances 1 elem.
	wantS := [4]int64{elem * 2 * 128, elem * 128, 0, elem}
	if got := pc.Strides[3]; got != wantS {
		t.Errorf("snapshots strides = %v, want %v", got, wantS)
	}
	// prods[N_DOP][N_BLOCKS][N_STEERING][TBS]: field 4.
	wantP := [4]int64{elem * 2 * 4 * 16, elem * 4 * 16, elem * 16, elem}
	if got := pc.Strides[4]; got != wantP {
		t.Errorf("prods strides = %v, want %v", got, wantP)
	}
}

func TestCompileChainingRequiresAdjacency(t *testing.T) {
	src := `
void f(void) {
  float *a; float *b; float *c;
  a = malloc(64); b = malloc(64); c = malloc(64);
  dfsInterpolate1D(task, 16, a, 16, b);
  unrelated_call(a);
  dfsInterpolate1D(task, 16, b, 16, c);
}
`
	res, err := Compile(src, Options{Symbols: map[string]int64{"task": 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChainedPasses != 0 {
		t.Error("calls separated by other statements must not chain")
	}
	if res.Stats.Descriptors != 2 {
		t.Errorf("descriptors = %d, want 2", res.Stats.Descriptors)
	}
}

func TestCompileChainsProducerConsumer(t *testing.T) {
	src := `
void f(void) {
  float *a; float *b; float *c;
  a = malloc(64); b = malloc(64); c = malloc(64);
  dfsInterpolate1D(task, 16, a, 32, b);
  dfsInterpolate1D(task, 32, b, 64, c);
}
`
	res, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChainedPasses != 1 || res.Stats.Descriptors != 1 {
		t.Errorf("chained=%d descriptors=%d, want 1/1", res.Stats.ChainedPasses, res.Stats.Descriptors)
	}
	if len(res.Plans[0].Calls) != 2 {
		t.Errorf("merged pass has %d comps", len(res.Plans[0].Calls))
	}
}

func TestNonCanonicalLoopNotCompacted(t *testing.T) {
	src := `
void f(void) {
  float *x; float *y;
  x = malloc(1024); y = malloc(1024);
  int i;
  for (i = 0; i < n; i += 2)
    cblas_saxpy(4, 1.0f, x, 1, y, 1);
}
`
	res, err := Compile(src, Options{Symbols: map[string]int64{"n": 8}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CompactedLoops != 0 {
		t.Error("step-2 loop must not be compacted")
	}
	// The call inside the surviving loop is still accelerated per call.
	if res.Stats.Descriptors != 1 {
		t.Errorf("descriptors = %d", res.Stats.Descriptors)
	}
}

func TestUnsupportedCallsPassThrough(t *testing.T) {
	src := `
void f(void) {
  cblas_sgemv(CblasColMajor, CblasNoTrans, m, n, 1.0f, a, lda, x, 1, 0.0f, y, 1);
  printf("hi");
}
`
	res, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Descriptors != 0 {
		t.Error("column-major gemv and printf must pass through")
	}
	if !strings.Contains(res.Source, "cblas_sgemv") {
		t.Error("unaccelerated call must remain in output")
	}
}

// The SAR pattern: a row loop whose body chains two accelerable calls must
// compact into one LOOP descriptor with a two-comp pass (paper §5.4:
// hardware chaining + hardware loop combined).
func TestSARChainedLoopCompaction(t *testing.T) {
	src, err := os.ReadFile("testdata/sar.c")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(string(src), Options{Symbols: map[string]int64{
		"N_ROWS": 64, "RAW_WIDTH": 80, "WIDTH": 64, "task": 0,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Descriptors != 1 {
		t.Fatalf("descriptors = %d, want 1\n%s", res.Stats.Descriptors, res.Describe())
	}
	if res.Stats.CompactedLoops != 1 || res.Stats.ChainedPasses != 1 {
		t.Errorf("compacted=%d chained=%d, want 1/1", res.Stats.CompactedLoops, res.Stats.ChainedPasses)
	}
	p := res.Plans[0]
	if len(p.Calls) != 2 {
		t.Fatalf("pass comps = %d, want 2 (RESMP chain)", len(p.Calls))
	}
	if p.CoveredCalls != 2*64 {
		t.Errorf("covered calls = %d, want 128", p.CoveredCalls)
	}
	if !strings.Contains(p.TDL, "LOOP 64 { PASS { COMP RESMP") {
		t.Errorf("TDL = %s", p.TDL)
	}
	// Per-row strides must advance each buffer by one row.
	if got := p.Calls[0].Strides[3]; got != [4]int64{0, 0, 0, 4 * 80} {
		t.Errorf("raw stride = %v", got)
	}
	if got := p.Calls[0].Strides[4]; got != [4]int64{0, 0, 0, 4 * 64} {
		t.Errorf("image stride = %v", got)
	}
	if strings.Contains(res.Source, "for (r") {
		t.Error("the row loop must be replaced")
	}
}

// A loop body whose statements do NOT form a producer/consumer chain must
// not be force-merged into one pass.
func TestLoopBodyWithoutChainNotCompacted(t *testing.T) {
	src := `
void f(void) {
  float a[8][16];
  float b[8][16];
  float c[16];
  float d[16];
  int i;
  for (i = 0; i < 8; ++i) {
    cblas_saxpy(16, 1.0f, &a[i][0], 1, c, 1);
    cblas_saxpy(16, 1.0f, &b[i][0], 1, d, 1);
  }
}
`
	res, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The two saxpys write different outputs: no chain, loop kept, but the
	// calls inside still accelerate individually (two descriptors inside
	// the surviving source loop).
	if res.Stats.CompactedLoops != 0 {
		t.Errorf("compacted = %d, want 0", res.Stats.CompactedLoops)
	}
	if res.Stats.Descriptors != 2 {
		t.Errorf("descriptors = %d, want 2", res.Stats.Descriptors)
	}
	if !strings.Contains(res.Source, "for (i = 0") {
		t.Error("unchainable loop must survive in the source")
	}
}

// Batched GEMV loops compact with per-iteration matrix strides.
func TestGemvLoopCompaction(t *testing.T) {
	src := `
void batched_models(void) {
  float models[32][64][16];
  float x[16];
  float y[32][64];
  int b;
  for (b = 0; b < 32; ++b)
    cblas_sgemv(CblasRowMajor, CblasNoTrans, 64, 16, 1.0f,
                &models[b][0][0], 16, x, 1, 0.0f, &y[b][0], 1);
}
`
	res, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CompactedLoops != 1 || res.Stats.Descriptors != 1 {
		t.Fatalf("compacted=%d descriptors=%d\n%s",
			res.Stats.CompactedLoops, res.Stats.Descriptors, res.Describe())
	}
	pc := res.Plans[0].Calls[0]
	if pc.Sym.Op != descriptor.OpGEMV {
		t.Fatalf("op = %v", pc.Sym.Op)
	}
	// models advances a whole 64x16 plane per iteration; y a 64-row slice.
	if got := pc.Strides[4]; got != [4]int64{0, 0, 0, 4 * 64 * 16} {
		t.Errorf("matrix stride = %v", got)
	}
	if got := pc.Strides[7]; got != [4]int64{0, 0, 0, 4 * 64} {
		t.Errorf("y stride = %v", got)
	}
	if _, ok := pc.Strides[6]; ok {
		t.Error("x is loop invariant: no stride entry expected")
	}
}

// cblas_sdot in assignment form gets a synthesised result buffer; the
// in-place mkl_simatcopy maps to RESHP with the same buffer on both sides.
func TestSdotAssignmentAndImatcopy(t *testing.T) {
	src := `
void f(void) {
  float *x; float *y; float *a;
  x = malloc(256); y = malloc(256); a = malloc(1024);
  r = cblas_sdot(64, x, 1, y, 1);
  mkl_simatcopy('R', 'T', 16, 16, 1.0f, a, 16, 16);
}
`
	res, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Descriptors != 2 {
		t.Fatalf("descriptors = %d\n%s", res.Stats.Descriptors, res.Describe())
	}
	dot := res.Plans[0].Calls[0]
	if dot.Sym.Op != descriptor.OpDOT {
		t.Fatalf("first plan op = %v", dot.Sym.Op)
	}
	if dot.Sym.Fields[4].Buf.Name != "r" {
		t.Errorf("dot result buffer = %q, want the assignment target", dot.Sym.Fields[4].Buf.Name)
	}
	reshp := res.Plans[1].Calls[0]
	if reshp.Sym.Op != descriptor.OpRESHP {
		t.Fatalf("second plan op = %v", reshp.Sym.Op)
	}
	if reshp.Sym.Fields[3].Buf.Name != "a" || reshp.Sym.Fields[4].Buf.Name != "a" {
		t.Error("imatcopy must reference the same buffer for src and dst")
	}
}

// Sparse BLAS: mkl_cspblas_scsrgemv maps to SPMV with derived nnz symbols.
func TestCsrgemvRecognition(t *testing.T) {
	src := `
void f(void) {
  float *a; float *x; float *y;
  int *ia; int *ja;
  a = malloc(4096); x = malloc(1024); y = malloc(1024);
  mkl_cspblas_scsrgemv("N", &m, a, ia, ja, x, y);
}
`
	res, err := Compile(src, Options{Symbols: map[string]int64{"m": 256}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Descriptors != 1 {
		t.Fatalf("descriptors = %d", res.Stats.Descriptors)
	}
	spmv := res.Plans[0].Calls[0]
	if spmv.Sym.Op != descriptor.OpSPMV {
		t.Fatalf("op = %v", spmv.Sym.Op)
	}
	// Bind with concrete buffers; the nnz symbol derives from the values
	// buffer's element count.
	b := &Binding{
		Buffers: map[string]BoundBuffer{
			"a": {PA: 0x1000, Elems: 1024}, "ia": {PA: 0x2000, Elems: 257},
			"ja": {PA: 0x3000, Elems: 1024}, "x": {PA: 0x4000, Elems: 256},
			"y": {PA: 0x5000, Elems: 256},
		},
		Ints: map[string]int64{"m": 256},
	}
	_, params, err := Bind(res.Plans[0], b)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range params {
		if p[2] != 1024 { // NNZ field of SpmvArgs
			t.Errorf("bound NNZ = %d, want 1024 (values buffer length)", p[2])
		}
	}
}

// Casts on malloc are the common legacy idiom; the rewrite must survive
// them.
func TestMallocWithCast(t *testing.T) {
	src := `
void f(void) {
  float complex *buf;
  buf = (float complex *) malloc(1024);
  free(buf);
}
`
	res, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MallocRewrites != 1 || res.Stats.FreeRewrites != 1 {
		t.Fatalf("rewrites = %d/%d\n%s", res.Stats.MallocRewrites, res.Stats.FreeRewrites, res.Source)
	}
	if !strings.Contains(res.Source, "mealib_mem_alloc(1024)") {
		t.Errorf("transformed source:\n%s", res.Source)
	}
	if decl := res.Buffers["buf"]; decl == nil || decl.ElemSize != 8 {
		t.Errorf("buffer decl = %+v", res.Buffers["buf"])
	}
}

// Control flow the compiler does not accelerate must survive the round
// trip untouched.
func TestControlFlowPassThrough(t *testing.T) {
	src := `
int classify(int v) {
  int out = 0;
  if (v > 10) {
    out = 1;
  } else {
    out = 2;
  }
  while (v > 0) {
    v = v - 1;
  }
  switch (v) {
    case 0: out = 3; break;
  }
  do {
    out = out + 1;
  } while (out < 5);
  return out;
}
`
	res, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Descriptors != 0 {
		t.Errorf("descriptors = %d, want 0", res.Stats.Descriptors)
	}
	// The emitter uses tight call-style spacing ("if(...)"), which is valid C.
	for _, want := range []string{"if(v > 10)", "while(v > 0)", "switch(v)", "return out"} {
		if !strings.Contains(res.Source, want) {
			t.Errorf("lost %q in:\n%s", want, res.Source)
		}
	}
	// The output must remain parseable C (idempotent second pass).
	res2, err := Compile(res.Source, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Descriptors != 0 {
		t.Error("second pass must also find nothing to accelerate")
	}
}

// At the paper's own problem sizes the compiler covers ~17M dynamic library
// calls with 3 descriptors (§5.5) — without executing anything.
func TestPaperScaleCompaction(t *testing.T) {
	src, err := os.ReadFile("testdata/stap.c")
	if err != nil {
		t.Fatal(err)
	}
	syms := map[string]int64{
		// A PERFECT-large-class configuration: 256 dopplers, 16M cdotc calls.
		"N_CHAN": 8, "N_PULSES": 256, "N_RANGE": 4096, "N_DOP": 256,
		"N_BLOCKS": 16, "N_STEERING": 64, "TDOF": 4,
		"TDOF_NCHAN": 32, "TBS": 64, "CELL_DIM": 64 * 32,
		"NULL": 0, "FFTW_FORWARD": 0, "FFTW_WISDOM_ONLY": 0,
	}
	res, err := Compile(string(src), Options{Symbols: syms})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Descriptors != 3 {
		t.Fatalf("descriptors = %d, want 3", res.Stats.Descriptors)
	}
	dots := int64(256) * 16 * 64 * 64 // 16.8M
	want := int64(2) + dots + 256*16
	if res.Stats.CoveredCalls != want {
		t.Errorf("covered calls = %d, want %d (~17M)", res.Stats.CoveredCalls, want)
	}
	if res.Stats.CoveredCalls < 16_000_000 {
		t.Errorf("must cover >16M calls, got %d", res.Stats.CoveredCalls)
	}
}

// Binding must evaluate constant index offsets exactly: a wrapped base
// address handed to the verifier defeats its interval proofs.
func TestBindRejectsOverflowingOffset(t *testing.T) {
	pc := &PlannedCall{
		Sym: &SymCall{
			Op:   descriptor.OpAXPY,
			Name: "cblas_saxpy",
			Fields: []SymField{
				intField("n"), f32Field("1.0"),
				bufField(BufRef{Name: "x"}), bufField(BufRef{Name: "y"}),
				intField("1"), intField("1"),
			},
		},
		ParamRef: "p0",
		Offsets: map[int][]offsetTerm{
			// 2^61 elements of 4 bytes on top of a base near the top of the
			// space: the machine product alone overflows int64.
			3: {{Expr: "k", Mult: 4}},
		},
	}
	plan := &Plan{Name: "p", TDL: `PASS { COMP AXPY PARAMS "p0" }`, Calls: []*PlannedCall{pc}}
	b := &Binding{
		Buffers: map[string]BoundBuffer{
			"x": {PA: 0x1000, Elems: 256},
			"y": {PA: 0xffff_ffff_ffff_0000, Elems: 256},
		},
		Ints: map[string]int64{"n": 256, "k": 1 << 61},
	}
	if _, _, err := Bind(plan, b); err == nil || !strings.Contains(err.Error(), "outside the 64-bit physical space") {
		t.Fatalf("overflowing offset bound without error (err=%v)", err)
	}
	// The same call with a sane offset binds, and the offset lands in the
	// address.
	b.Ints["k"] = 16
	_, params, err := Bind(plan, b)
	if err != nil {
		t.Fatal(err)
	}
	a, aerr := accel.DecodeAxpyArgs(params["p0"])
	if aerr != nil {
		t.Fatal(aerr)
	}
	if want := phys.Addr(0xffff_ffff_ffff_0000 + 64); a.Y != want {
		t.Errorf("bound y = %v, want %v", a.Y, want)
	}
}
