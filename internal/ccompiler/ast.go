package ccompiler

import (
	"fmt"
	"strings"
)

// Node is one element of the statement tree.
type Node interface {
	emit(b *strings.Builder, indent string)
}

// Simple is a plain statement (everything up to ';').
type Simple struct {
	Toks []Token
	// replacement, when non-empty, is emitted instead of the tokens —
	// how the compiler rewrites library and allocation calls.
	replacement []string
}

// PragmaLine is a preprocessor line (#include, #define, #pragma ...).
type PragmaLine struct {
	Text string
	Line int
}

// ForNode is a for loop with a parsed header.
type ForNode struct {
	Init, Cond, Post []Token
	Body             *BlockNode
	// OMP marks an attached "#pragma omp parallel for".
	OMP bool
	// replaced marks the whole loop as rewritten (loop compaction); the
	// replacement lines are emitted instead.
	replacement []string
}

// BracedNode is any header followed by a braced body: function definitions,
// if/else, while, switch.
type BracedNode struct {
	Header []Token
	Body   *BlockNode
}

// BlockNode is a sequence of nodes.
type BlockNode struct {
	Nodes []Node
}

// cparser walks the token stream.
type cparser struct {
	toks []Token
	pos  int
}

func (p *cparser) peek() Token { return p.toks[p.pos] }

func (p *cparser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// ParseC builds the statement tree for a whole translation unit.
func ParseC(toks []Token) (*BlockNode, error) {
	p := &cparser{toks: toks}
	blk, err := p.parseBlock(false)
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, fmt.Errorf("ccompiler: line %d: unexpected %s", p.peek().Line, p.peek())
	}
	return blk, nil
}

// parseBlock parses until '}' (when inBraces) or EOF.
func (p *cparser) parseBlock(inBraces bool) (*BlockNode, error) {
	blk := &BlockNode{}
	for {
		t := p.peek()
		switch {
		case t.Kind == TokEOF:
			if inBraces {
				return nil, fmt.Errorf("ccompiler: line %d: missing '}'", t.Line)
			}
			return blk, nil
		case t.Kind == TokPunct && t.Text == "}":
			if !inBraces {
				return nil, fmt.Errorf("ccompiler: line %d: unexpected '}'", t.Line)
			}
			p.next()
			return blk, nil
		case t.Kind == TokPragma:
			p.next()
			blk.Nodes = append(blk.Nodes, &PragmaLine{Text: t.Text, Line: t.Line})
		case t.Kind == TokIdent && t.Text == "for":
			f, err := p.parseFor()
			if err != nil {
				return nil, err
			}
			blk.Nodes = append(blk.Nodes, f)
		case t.Kind == TokPunct && t.Text == "{":
			p.next()
			inner, err := p.parseBlock(true)
			if err != nil {
				return nil, err
			}
			blk.Nodes = append(blk.Nodes, &BracedNode{Body: inner})
		default:
			n, err := p.parseSimpleOrBraced()
			if err != nil {
				return nil, err
			}
			blk.Nodes = append(blk.Nodes, n)
		}
	}
}

// parseFor parses "for (init; cond; post) body".
func (p *cparser) parseFor() (*ForNode, error) {
	kw := p.next() // "for"
	if t := p.next(); !(t.Kind == TokPunct && t.Text == "(") {
		return nil, fmt.Errorf("ccompiler: line %d: expected '(' after for", kw.Line)
	}
	var parts [][]Token
	var cur []Token
	depth := 0
	for {
		t := p.next()
		if t.Kind == TokEOF {
			return nil, fmt.Errorf("ccompiler: line %d: unterminated for header", kw.Line)
		}
		if t.Kind == TokPragma {
			return nil, fmt.Errorf("ccompiler: line %d: preprocessor directive inside a for header", t.Line)
		}
		if t.Kind == TokPunct {
			switch t.Text {
			case "(", "[":
				depth++
			case ")", "]":
				if t.Text == ")" && depth == 0 {
					parts = append(parts, cur)
					goto headerDone
				}
				depth--
			case ";":
				if depth == 0 {
					parts = append(parts, cur)
					cur = nil
					continue
				}
			}
		}
		cur = append(cur, t)
	}
headerDone:
	if len(parts) != 3 {
		return nil, fmt.Errorf("ccompiler: line %d: for header has %d clauses, want 3", kw.Line, len(parts))
	}
	f := &ForNode{Init: parts[0], Cond: parts[1], Post: parts[2]}
	// Body: braced block, nested for, or single statement.
	switch t := p.peek(); {
	case t.Kind == TokPunct && t.Text == "{":
		p.next()
		body, err := p.parseBlock(true)
		if err != nil {
			return nil, err
		}
		f.Body = body
	case t.Kind == TokIdent && t.Text == "for":
		inner, err := p.parseFor()
		if err != nil {
			return nil, err
		}
		f.Body = &BlockNode{Nodes: []Node{inner}}
	default:
		stmt, err := p.parseSimpleOrBraced()
		if err != nil {
			return nil, err
		}
		f.Body = &BlockNode{Nodes: []Node{stmt}}
	}
	return f, nil
}

// parseSimpleOrBraced accumulates a statement; if a top-level '{' appears
// outside an initializer it becomes a BracedNode (function definition,
// if/while header).
func (p *cparser) parseSimpleOrBraced() (Node, error) {
	var toks []Token
	depth := 0
	sawAssign := false
	for {
		t := p.peek()
		if t.Kind == TokEOF {
			if len(toks) == 0 {
				return nil, fmt.Errorf("ccompiler: unexpected end of file")
			}
			return nil, fmt.Errorf("ccompiler: line %d: statement missing ';'", toks[0].Line)
		}
		if t.Kind == TokPragma {
			// A directive spans to end of line; embedded in a statement it
			// could not be re-emitted faithfully.
			return nil, fmt.Errorf("ccompiler: line %d: preprocessor directive in the middle of a statement", t.Line)
		}
		if t.Kind == TokPunct {
			switch t.Text {
			case "(", "[":
				depth++
			case ")", "]":
				depth--
			case "=":
				sawAssign = true
			case ";":
				if depth == 0 {
					p.next()
					return &Simple{Toks: toks}, nil
				}
			case "{":
				if depth == 0 && !sawAssign {
					p.next()
					body, err := p.parseBlock(true)
					if err != nil {
						return nil, err
					}
					return &BracedNode{Header: toks, Body: body}, nil
				}
				if depth == 0 && sawAssign {
					// Initializer list: swallow the braces into the
					// statement tokens until the matching '}'.
					braces := 0
					for {
						bt := p.next()
						if bt.Kind == TokEOF {
							return nil, fmt.Errorf("ccompiler: line %d: unterminated initializer", t.Line)
						}
						if bt.Kind == TokPragma {
							return nil, fmt.Errorf("ccompiler: line %d: preprocessor directive inside an initializer", bt.Line)
						}
						toks = append(toks, bt)
						if bt.Kind == TokPunct && bt.Text == "{" {
							braces++
						}
						if bt.Kind == TokPunct && bt.Text == "}" {
							braces--
							if braces == 0 {
								break
							}
						}
					}
					continue
				}
			}
		}
		p.next()
		toks = append(toks, t)
	}
}

// --- emission ---

// Emit renders the (possibly transformed) tree back to C source.
func Emit(blk *BlockNode) string {
	var b strings.Builder
	blk.emit(&b, "")
	return b.String()
}

func (n *BlockNode) emit(b *strings.Builder, indent string) {
	for _, node := range n.Nodes {
		node.emit(b, indent)
	}
}

func (n *Simple) emit(b *strings.Builder, indent string) {
	if len(n.replacement) > 0 {
		for _, line := range n.replacement {
			b.WriteString(indent)
			b.WriteString(line)
			b.WriteString("\n")
		}
		return
	}
	b.WriteString(indent)
	b.WriteString(renderTokens(n.Toks))
	b.WriteString(";\n")
}

func (n *PragmaLine) emit(b *strings.Builder, indent string) {
	b.WriteString(indent)
	b.WriteString(n.Text)
	b.WriteString("\n")
}

func (n *ForNode) emit(b *strings.Builder, indent string) {
	if len(n.replacement) > 0 {
		for _, line := range n.replacement {
			b.WriteString(indent)
			b.WriteString(line)
			b.WriteString("\n")
		}
		return
	}
	fmt.Fprintf(b, "%sfor (%s; %s; %s) {\n", indent,
		renderTokens(n.Init), renderTokens(n.Cond), renderTokens(n.Post))
	n.Body.emit(b, indent+"  ")
	b.WriteString(indent)
	b.WriteString("}\n")
}

func (n *BracedNode) emit(b *strings.Builder, indent string) {
	b.WriteString(indent)
	if len(n.Header) > 0 {
		b.WriteString(renderTokens(n.Header))
		b.WriteString(" ")
	}
	b.WriteString("{\n")
	n.Body.emit(b, indent+"  ")
	b.WriteString(indent)
	b.WriteString("}\n")
}

// renderTokens joins tokens with minimal spacing.
func renderTokens(toks []Token) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 && needSpace(toks[i-1], t) {
			b.WriteString(" ")
		}
		b.WriteString(t.Text)
	}
	return b.String()
}

func needSpace(a, b Token) bool {
	tight := func(s string) bool {
		switch s {
		case "(", ")", "[", "]", ",", ";", ".", "->", "&", "*", "++", "--":
			return true
		}
		return false
	}
	if a.Kind == TokPunct && (a.Text == "(" || a.Text == "[" || a.Text == "." || a.Text == "->") {
		return false
	}
	if b.Kind == TokPunct && tight(b.Text) && b.Text != "&" && b.Text != "*" {
		return false
	}
	if b.Kind == TokPunct && (b.Text == "&" || b.Text == "*") {
		return true
	}
	if a.Kind == TokPunct && (a.Text == "&" && b.Kind == TokIdent) {
		return false
	}
	return true
}
