package ccompiler

import (
	"fmt"
	"math/big"
	"strings"

	"mealib/internal/accel"
	"mealib/internal/descriptor"
	"mealib/internal/phys"
)

// BoundBuffer ties a source-level buffer name to its physically contiguous
// allocation.
type BoundBuffer struct {
	PA phys.Addr
	// Elems is the element count (used to derive __nnz_/__cols_ symbols
	// for SPMV).
	Elems int64
}

// Binding supplies the run-time values a generated plan needs: buffer
// addresses and the integer/float symbols its expressions reference. It is
// what linking the transformed program against the MEALib runtime provides.
type Binding struct {
	Buffers map[string]BoundBuffer
	Ints    map[string]int64
	Floats  map[string]float32
}

// ints returns the symbol table including the derived __nnz_/__cols_
// pseudo-symbols.
func (b *Binding) ints() map[string]int64 {
	out := make(map[string]int64, len(b.Ints)+2*len(b.Buffers))
	for k, v := range b.Ints {
		out[k] = v
	}
	for name, buf := range b.Buffers {
		out["__nnz_"+name] = buf.Elems
		out["__cols_"+name] = buf.Elems
	}
	return out
}

// Bind resolves a generated plan against a binding, producing the TDL text
// and concrete parameter table ready for mealibrt.Runtime.AccPlan.
func Bind(plan *Plan, b *Binding) (string, map[string]descriptor.Params, error) {
	if b == nil || b.Buffers == nil {
		return "", nil, fmt.Errorf("ccompiler: nil binding")
	}
	params := make(map[string]descriptor.Params, len(plan.Calls))
	for _, pc := range plan.Calls {
		p, err := bindCall(pc, b)
		if err != nil {
			return "", nil, fmt.Errorf("ccompiler: bind %s (line %d): %w", pc.Sym.Name, pc.Sym.Line, err)
		}
		params[pc.ParamRef] = p
	}
	return plan.TDL, params, nil
}

// resolve evaluates one symbolic field.
func (pcb *callBinder) resolve(fi int) (uint64, error) {
	f := pcb.pc.Sym.Fields[fi]
	switch f.Kind {
	case FieldInt:
		v, err := EvalInt(f.Expr, pcb.ints)
		if err != nil {
			return 0, err
		}
		return uint64(v), nil
	case FieldF32:
		v, err := EvalF32(f.Expr, pcb.ints, pcb.b.Floats)
		if err != nil {
			return 0, err
		}
		return descriptor.F32Field(v), nil
	case FieldBuf:
		a, err := pcb.bufAddr(fi)
		if err != nil {
			return 0, err
		}
		return descriptor.AddrField(a), nil
	default:
		return 0, nil
	}
}

// callBinder resolves the fields of one planned call.
type callBinder struct {
	pc   *PlannedCall
	b    *Binding
	ints map[string]int64
}

// bufAddr resolves a buffer field to a physical address including its
// constant index offset. The offset terms are evaluated in exact arithmetic:
// tdlcheck proves the descriptor's loop arithmetic stays inside the address
// space, and that proof is worthless if the compiler hands it a base address
// that already wrapped during binding.
func (pcb *callBinder) bufAddr(fi int) (phys.Addr, error) {
	ref := pcb.pc.Sym.Fields[fi].Buf
	name := ref.Name
	buf, ok := pcb.b.Buffers[name]
	if !ok {
		return 0, fmt.Errorf("unbound buffer %q", name)
	}
	addr := new(big.Int).SetUint64(uint64(buf.PA))
	for _, term := range pcb.pc.Offsets[fi] {
		v, err := EvalInt(term.Expr, pcb.ints)
		if err != nil {
			return 0, fmt.Errorf("offset of %q: %w", ref, err)
		}
		addr.Add(addr, new(big.Int).Mul(big.NewInt(v), big.NewInt(term.Mult)))
	}
	if addr.Sign() < 0 || !addr.IsUint64() {
		return 0, fmt.Errorf("offset of %q: bound address %v is outside the 64-bit physical space (offset arithmetic overflows)", ref, addr)
	}
	return phys.Addr(addr.Uint64()), nil
}

// intOf resolves an integer field by position.
func (pcb *callBinder) intOf(fi int) (int64, error) {
	v, err := pcb.resolve(fi)
	return int64(v), err
}

// f32Of resolves a float field by position.
func (pcb *callBinder) f32Of(fi int) (float32, error) {
	v, err := pcb.resolve(fi)
	return descriptor.F32Of(v), err
}

// strides returns the field's per-level strides as accel.Strides.
func (pcb *callBinder) strides(fi int) accel.Strides {
	var s accel.Strides
	raw := pcb.pc.Strides[fi]
	for i := range s {
		s[i] = raw[i]
	}
	return s
}

// bindCall assembles the concrete accelerator argument block for one call.
func bindCall(pc *PlannedCall, b *Binding) (descriptor.Params, error) {
	pcb := &callBinder{pc: pc, b: b, ints: b.ints()}
	sym := pc.Sym
	fail := func(err error) (descriptor.Params, error) { return nil, err }
	switch sym.Op {
	case descriptor.OpAXPY:
		n, err := pcb.intOf(0)
		if err != nil {
			return fail(err)
		}
		alpha, err := pcb.f32Of(1)
		if err != nil {
			return fail(err)
		}
		x, err := pcb.bufAddr(2)
		if err != nil {
			return fail(err)
		}
		y, err := pcb.bufAddr(3)
		if err != nil {
			return fail(err)
		}
		incx, err := pcb.intOf(4)
		if err != nil {
			return fail(err)
		}
		incy, err := pcb.intOf(5)
		if err != nil {
			return fail(err)
		}
		return accel.AxpyArgs{
			N: n, Alpha: alpha, X: x, Y: y, IncX: incx, IncY: incy,
			LoopStrideX: pcb.strides(2), LoopStrideY: pcb.strides(3),
		}.Params(), nil
	case descriptor.OpDOT:
		n, err := pcb.intOf(0)
		if err != nil {
			return fail(err)
		}
		cplx, err := pcb.intOf(1)
		if err != nil {
			return fail(err)
		}
		x, err := pcb.bufAddr(2)
		if err != nil {
			return fail(err)
		}
		y, err := pcb.bufAddr(3)
		if err != nil {
			return fail(err)
		}
		out, err := pcb.bufAddr(4)
		if err != nil {
			return fail(err)
		}
		incx, err := pcb.intOf(5)
		if err != nil {
			return fail(err)
		}
		incy, err := pcb.intOf(6)
		if err != nil {
			return fail(err)
		}
		return accel.DotArgs{
			N: n, Complex: cplx != 0, X: x, Y: y, Out: out, IncX: incx, IncY: incy,
			LoopStrideX: pcb.strides(2), LoopStrideY: pcb.strides(3), LoopStrideOut: pcb.strides(4),
		}.Params(), nil
	case descriptor.OpGEMV:
		m, err := pcb.intOf(0)
		if err != nil {
			return fail(err)
		}
		n, err := pcb.intOf(1)
		if err != nil {
			return fail(err)
		}
		alpha, err := pcb.f32Of(2)
		if err != nil {
			return fail(err)
		}
		beta, err := pcb.f32Of(3)
		if err != nil {
			return fail(err)
		}
		a, err := pcb.bufAddr(4)
		if err != nil {
			return fail(err)
		}
		lda, err := pcb.intOf(5)
		if err != nil {
			return fail(err)
		}
		x, err := pcb.bufAddr(6)
		if err != nil {
			return fail(err)
		}
		y, err := pcb.bufAddr(7)
		if err != nil {
			return fail(err)
		}
		return accel.GemvArgs{
			M: m, N: n, Alpha: alpha, Beta: beta, A: a, Lda: lda, X: x, Y: y,
			LoopStrideA: pcb.strides(4), LoopStrideX: pcb.strides(6), LoopStrideY: pcb.strides(7),
		}.Params(), nil
	case descriptor.OpSPMV:
		m, err := pcb.intOf(0)
		if err != nil {
			return fail(err)
		}
		cols, err := pcb.intOf(1)
		if err != nil {
			return fail(err)
		}
		nnz, err := pcb.intOf(2)
		if err != nil {
			return fail(err)
		}
		rp, err := pcb.bufAddr(3)
		if err != nil {
			return fail(err)
		}
		ci, err := pcb.bufAddr(4)
		if err != nil {
			return fail(err)
		}
		vals, err := pcb.bufAddr(5)
		if err != nil {
			return fail(err)
		}
		x, err := pcb.bufAddr(6)
		if err != nil {
			return fail(err)
		}
		y, err := pcb.bufAddr(7)
		if err != nil {
			return fail(err)
		}
		return accel.SpmvArgs{M: m, Cols: cols, NNZ: nnz, RowPtr: rp, ColIdx: ci, Values: vals, X: x, Y: y}.Params(), nil
	case descriptor.OpRESMP:
		nin, err := pcb.intOf(0)
		if err != nil {
			return fail(err)
		}
		nout, err := pcb.intOf(1)
		if err != nil {
			return fail(err)
		}
		kind, err := pcb.intOf(2)
		if err != nil {
			return fail(err)
		}
		src, err := pcb.bufAddr(3)
		if err != nil {
			return fail(err)
		}
		dst, err := pcb.bufAddr(4)
		if err != nil {
			return fail(err)
		}
		return accel.ResmpArgs{
			NIn: nin, NOut: nout, Kind: kind, Src: src, Dst: dst,
			LoopStrideSrc: pcb.strides(3), LoopStrideDst: pcb.strides(4),
		}.Params(), nil
	case descriptor.OpFFT:
		n, err := pcb.intOf(0)
		if err != nil {
			return fail(err)
		}
		inv, err := pcb.intOf(1)
		if err != nil {
			return fail(err)
		}
		howMany, err := pcb.intOf(2)
		if err != nil {
			return fail(err)
		}
		src, err := pcb.bufAddr(3)
		if err != nil {
			return fail(err)
		}
		dst, err := pcb.bufAddr(4)
		if err != nil {
			return fail(err)
		}
		return accel.FFTArgs{
			N: n, Inverse: inv != 0, HowMany: howMany, Src: src, Dst: dst,
			LoopStrideSrc: pcb.strides(3), LoopStrideDst: pcb.strides(4),
		}.Params(), nil
	case descriptor.OpRESHP:
		rows, err := pcb.intOf(0)
		if err != nil {
			return fail(err)
		}
		cols, err := pcb.intOf(1)
		if err != nil {
			return fail(err)
		}
		elem, err := pcb.intOf(2)
		if err != nil {
			return fail(err)
		}
		src, err := pcb.bufAddr(3)
		if err != nil {
			return fail(err)
		}
		dst, err := pcb.bufAddr(4)
		if err != nil {
			return fail(err)
		}
		return accel.ReshpArgs{Rows: rows, Cols: cols, Elem: accel.ElemKind(elem), Src: src, Dst: dst}.Params(), nil
	default:
		return nil, fmt.Errorf("no binder for opcode %v", sym.Op)
	}
}

// Describe renders a human-readable summary of a compilation result (used
// by the mealibcc CLI).
func (r *Result) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "library call sites recognised : %d\n", r.Stats.CallSites)
	fmt.Fprintf(&b, "dynamic calls covered         : %d\n", r.Stats.CoveredCalls)
	fmt.Fprintf(&b, "accelerator descriptors       : %d\n", r.Stats.Descriptors)
	fmt.Fprintf(&b, "chained passes                : %d\n", r.Stats.ChainedPasses)
	fmt.Fprintf(&b, "loops compacted               : %d\n", r.Stats.CompactedLoops)
	fmt.Fprintf(&b, "malloc/free rewrites          : %d/%d\n", r.Stats.MallocRewrites, r.Stats.FreeRewrites)
	for _, p := range r.Plans {
		fmt.Fprintf(&b, "\n%s covers %d call(s):\n  %s\n", p.Name, p.CoveredCalls, p.TDL)
	}
	return b.String()
}
