package mealib_test

import (
	"fmt"
	"log"

	"mealib"
)

// The basic flow: allocate accelerator-visible buffers, run a memory-bounded
// operation on the memory-side accelerators, read the result.
func Example() {
	sys, err := mealib.New()
	if err != nil {
		log.Fatal(err)
	}
	x, _ := sys.AllocFloat32(4)
	y, _ := sys.AllocFloat32(4)
	_ = x.Set([]float32{1, 2, 3, 4})
	_ = y.Set([]float32{10, 20, 30, 40})
	if _, err := sys.Saxpy(2, x, y); err != nil {
		log.Fatal(err)
	}
	out, _ := y.All()
	fmt.Println(out)
	// Output: [12 24 36 48]
}

// Hardware chaining: a transpose feeding a batched FFT runs as one PASS, so
// the intermediate never leaves the memory stack.
func ExampleSystem_NewPlan_chaining() {
	sys, err := mealib.New()
	if err != nil {
		log.Fatal(err)
	}
	const n = 8
	src, _ := sys.AllocComplex64(n * n)
	dst, _ := sys.AllocComplex64(n * n)
	img := make([]complex64, n*n)
	img[0] = 1 // impulse
	_ = src.Set(img)
	run, err := sys.NewPlan().
		Pass(mealib.TransposeC64Comp(n, n, src, dst),
			mealib.FFTComp(n, n, dst, false, nil)).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accelerator activations:", run.Comps)
	out, _ := dst.Get(0, 1)
	fmt.Println("first bin:", out[0])
	// Output:
	// accelerator activations: 2
	// first bin: (1+0i)
}

// A hardware LOOP descriptor compacts many library calls into one
// invocation: here 8 dot products execute from a single descriptor.
func ExampleSystem_NewPlan_loop() {
	sys, err := mealib.New()
	if err != nil {
		log.Fatal(err)
	}
	const iters, n = 8, 16
	x, _ := sys.AllocComplex64(n)
	y, _ := sys.AllocComplex64(n * iters)
	out, _ := sys.AllocComplex64(iters)
	ones := make([]complex64, n)
	for i := range ones {
		ones[i] = 1
	}
	_ = x.Set(ones)
	ys := make([]complex64, n*iters)
	for k := range ys {
		ys[k] = complex(float32(k/n+1), 0)
	}
	_ = y.Set(ys)
	run, err := sys.NewPlan().
		Loop([]int{iters},
			mealib.CdotcComp(n, x, y, out, 1, nil, mealib.Strides{n}, mealib.Strides{1})).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("calls in one invocation:", run.Comps)
	res, _ := out.All()
	fmt.Println("first, last:", res[0], res[iters-1])
	// Output:
	// calls in one invocation: 8
	// first, last: (16+0i) (128+0i)
}

// The source-to-source compiler turns legacy C into accelerator plans.
func ExampleCompileC() {
	src := `
void axpy_loop(void) {
  float gamma[8][16];
  float acc[16];
  int i;
  for (i = 0; i < 8; ++i)
    cblas_saxpy(16, 1.0f, &gamma[i][0], 1, acc, 1);
}
`
	prog, err := mealib.CompileC(src, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("descriptors:", prog.Descriptors())
	fmt.Println("calls covered:", prog.CoveredCalls())
	// Output:
	// descriptors: 1
	// calls covered: 8
}
