// STAP (Space-Time Adaptive Processing) end to end: the legacy radar
// pipeline of the paper's Listing 1 running with its memory-bounded stages
// on the simulated accelerator layer and its compute-bounded solver on the
// host — then the Figure 13 comparison against the all-Haswell baseline.
package main

import (
	"fmt"
	"log"

	"mealib/internal/apps/stap"
	"mealib/internal/mealibrt"
)

func main() {
	// Functional pipeline at a demo size: real data, real transforms.
	rt, err := mealibrt.New(mealibrt.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	p := stap.Params{Name: "demo", NChan: 4, NPulses: 16, NRange: 1024,
		NBlocks: 2, NSteering: 4, TDOF: 2, TBS: 24}
	pl, err := stap.NewPipeline(p, rt)
	if err != nil {
		log.Fatal(err)
	}
	if err := pl.LoadDatacube(42); err != nil {
		log.Fatal(err)
	}

	inv, err := pl.DopplerProcess()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("doppler processing: RESHP+FFT chained in one pass, %v accel time, %v over the NoC\n",
		inv.Report.Time, inv.Report.NoCBytes)

	if err := pl.SolveWeights(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("adaptive weights: CHERK covariance + Cholesky + CTRSM solves on the host")

	inv, err = pl.InnerProducts()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inner products: %d cblas_cdotc_sub calls compacted into ONE LOOP descriptor (%v)\n",
		inv.Report.Comps, inv.Report.Time)

	fmt.Printf("total accelerator invocations: %d\n\n", rt.Stats().Invocations)

	// Figure 13: the modelled paper-scale comparison.
	fmt.Println("paper-scale comparison (Figure 13):")
	for _, params := range []stap.Params{stap.Small(), stap.Medium(), stap.Large()} {
		g, err := stap.Compare(params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s performance gain %.2fx, EDP gain %.2fx  (Haswell %v -> MEALib %v)\n",
			params.Name, g.Performance, g.EDP, g.Haswell.Time, g.MEALib.Time)
	}
}
