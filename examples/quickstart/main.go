// Quickstart: allocate accelerator-visible buffers, run memory-bounded
// library operations on the simulated memory-side accelerators, and read
// the modelled time/energy of each invocation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mealib"
)

func main() {
	sys, err := mealib.New()
	if err != nil {
		log.Fatal(err)
	}

	// Buffers live in the physically contiguous data space, visible to the
	// host (this code) and to the accelerators (by physical address).
	const n = 1 << 20
	x, err := sys.AllocFloat32(n)
	if err != nil {
		log.Fatal(err)
	}
	y, err := sys.AllocFloat32(n)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	xs := make([]float32, n)
	ys := make([]float32, n)
	for i := range xs {
		xs[i] = float32(rng.NormFloat64())
		ys[i] = float32(rng.NormFloat64())
	}
	if err := x.Set(xs); err != nil {
		log.Fatal(err)
	}
	if err := y.Set(ys); err != nil {
		log.Fatal(err)
	}

	// y += 2x on the AXPY accelerator (cblas_saxpy of Table 1).
	run, err := sys.Saxpy(2.0, x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AXPY over %d elements: %v total (%v on the accelerators), %v\n",
		n, run.Time, run.AccelTime, run.Energy)

	// Inner product on the DOT accelerator.
	dot, run, err := sys.Sdot(x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DOT  = %.4g: %v total, %v\n", dot, run.Time, run.Energy)

	// A batched FFT on the FFT accelerator.
	const fftN, batch = 4096, 64
	sig, err := sys.AllocComplex64(fftN * batch)
	if err != nil {
		log.Fatal(err)
	}
	cs := make([]complex64, fftN*batch)
	for i := range cs {
		cs[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	if err := sig.Set(cs); err != nil {
		log.Fatal(err)
	}
	run, err = sys.FFT(sig, fftN, batch, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FFT  %d x %d points: %v total, %v\n", batch, fftN, run.Time, run.Energy)

	st := sys.Stats()
	fmt.Printf("\n%d accelerator invocations; overhead %v (cache flush + descriptor copy)\n",
		st.Invocations, st.OverheadTime)
}
