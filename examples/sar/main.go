// SAR image formation with hardware accelerator chaining (paper §5.4,
// Figure 12a): every row of the raw image is range-interpolated (RESMP)
// and Fourier transformed (FFT). Hardware chaining runs both accelerators
// in ONE pass of ONE LOOP descriptor — the intermediate row never leaves
// the stack — while software chaining launches two descriptors whose
// intermediate round-trips through DRAM.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mealib"
)

const (
	size = 256           // output image edge
	raw  = size + size/4 // raw samples per row
)

func buffers(sys *mealib.System, rng *rand.Rand) (*mealib.Complex64Buffer, *mealib.Complex64Buffer) {
	rawBuf, err := sys.AllocComplex64(size * raw)
	if err != nil {
		log.Fatal(err)
	}
	img, err := sys.AllocComplex64(size * size)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]complex64, size*raw)
	for i := range data {
		data[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	if err := rawBuf.Set(data); err != nil {
		log.Fatal(err)
	}
	return rawBuf, img
}

func main() {
	sys, err := mealib.New()
	if err != nil {
		log.Fatal(err)
	}

	// Hardware chaining: LOOP size { PASS { RESMP -> FFT } }.
	rng := rand.New(rand.NewSource(7))
	rawHW, imgHW := buffers(sys, rng)
	hw, err := sys.NewPlan().Loop([]int{size},
		mealib.ResampleC64Comp(raw, size, rawHW, imgHW, false,
			mealib.Strides{raw}, mealib.Strides{size}),
		mealib.FFTComp(size, 1, imgHW, false, mealib.Strides{size}),
	).Run()
	if err != nil {
		log.Fatal(err)
	}

	// Software chaining: the same two stages as separate invocations.
	rng = rand.New(rand.NewSource(7))
	rawSW, imgSW := buffers(sys, rng)
	sw1, err := sys.NewPlan().Loop([]int{size},
		mealib.ResampleC64Comp(raw, size, rawSW, imgSW, false,
			mealib.Strides{raw}, mealib.Strides{size}),
	).Run()
	if err != nil {
		log.Fatal(err)
	}
	sw2, err := sys.NewPlan().Loop([]int{size},
		mealib.FFTComp(size, 1, imgSW, false, mealib.Strides{size}),
	).Run()
	if err != nil {
		log.Fatal(err)
	}

	// Both paths formed the same image.
	a, err := imgHW.All()
	if err != nil {
		log.Fatal(err)
	}
	b, err := imgSW.All()
	if err != nil {
		log.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			log.Fatalf("images differ at %d", i)
		}
	}

	swTotal := sw1.Time + sw2.Time
	fmt.Printf("image %dx%d, raw width %d\n", size, size, raw)
	fmt.Printf("hardware chaining : %v (1 invocation, %d accelerator activations)\n", hw.Time, hw.Comps)
	fmt.Printf("software chaining : %v (2 invocations)\n", swTotal)
	fmt.Printf("chaining speedup  : %.2fx (paper: 2.5x at 256^2, shrinking with size)\n",
		float64(swTotal)/float64(hw.Time))
}
