// Design-space exploration of the FFT and SPMV accelerators (paper §5.3,
// Figure 11): sweep frequency, datapath width, DRAM row-buffer size and
// blocking factor at the fixed 510 GB/s stack bandwidth, and report the
// performance/power/efficiency frontier.
package main

import (
	"fmt"
	"sort"

	"mealib/internal/exp"
)

func frontier(points []exp.DesignPoint) []exp.DesignPoint {
	sorted := append([]exp.DesignPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Power < sorted[j].Power })
	var out []exp.DesignPoint
	best := 0.0
	for _, p := range sorted {
		if g := p.Perf.G(); g > best {
			best = g
			out = append(out, p)
		}
	}
	return out
}

func show(name string, points []exp.DesignPoint, spmv bool) {
	fmt.Printf("%s design space: %d points\n", name, len(points))
	fmt.Println("  pareto frontier (performance vs power):")
	for _, p := range frontier(points) {
		knob := fmt.Sprintf("row %v", p.RowBytes)
		if spmv {
			knob = fmt.Sprintf("block %d", p.BlockSize)
		}
		fmt.Printf("    %v x%d cores, %-9s -> %8.1f GFLOPS at %6.2f W  (%.2f GFLOPS/W)\n",
			p.Freq, p.CoresPerTile, knob, p.Perf.G(), float64(p.Power), p.Efficiency())
	}
	lo, hi := 1e18, 0.0
	for _, p := range points {
		e := p.Efficiency()
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	fmt.Printf("  efficiency range: %.2f - %.2f GFLOPS/W\n\n", lo, hi)
}

func main() {
	show("FFT", exp.FFTDesignSpace(), false)
	show("SPMV", exp.SpmvDesignSpace(), true)
	fmt.Println("paper (Figure 11): FFT 10-56 GFLOPS/W, SPMV 0.18-1.76 GFLOPS/W")
}
