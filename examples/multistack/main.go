// Buffer placement across memory stacks (paper §3.3/§3.5): the runtime can
// allocate on an explicit stack; data on the accelerators' Local Memory
// Stack streams at the 510 GB/s internal bandwidth, while data on a Remote
// Memory Stack crosses the 40 GB/s inter-stack links. Same program, same
// results — an order of magnitude apart in accelerator time.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mealib"
)

func main() {
	sys, err := mealib.New(mealib.WithStacks(2))
	if err != nil {
		log.Fatal(err)
	}
	const n = 1 << 20
	rng := rand.New(rand.NewSource(9))
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32(rng.NormFloat64())
	}

	measure := func(stack int) *mealib.Run {
		x, err := sys.AllocFloat32On(stack, n)
		if err != nil {
			log.Fatal(err)
		}
		y, err := sys.AllocFloat32On(stack, n)
		if err != nil {
			log.Fatal(err)
		}
		if err := x.Set(xs); err != nil {
			log.Fatal(err)
		}
		if err := y.Set(make([]float32, n)); err != nil {
			log.Fatal(err)
		}
		run, err := sys.Saxpy(1.0, x, y)
		if err != nil {
			log.Fatal(err)
		}
		out, err := y.Get(0, 4)
		if err != nil {
			log.Fatal(err)
		}
		for i := range out {
			if out[i] != xs[i] {
				log.Fatalf("stack %d computed wrong results", stack)
			}
		}
		return run
	}

	local := measure(0)  // the accelerators' Local Memory Stack
	remote := measure(1) // a Remote Memory Stack

	fmt.Printf("AXPY over %d elements (4 MB per operand):\n", n)
	fmt.Printf("  local stack  (LMS): %v on the accelerators, %v\n", local.AccelTime, local.AccelEnergy)
	fmt.Printf("  remote stack (RMS): %v on the accelerators, %v\n", remote.AccelTime, remote.AccelEnergy)
	fmt.Printf("  slowdown: %.1fx — why mealib_mem_alloc takes a stack argument (§3.5)\n",
		float64(remote.AccelTime)/float64(local.AccelTime))
}
