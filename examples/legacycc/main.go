// Legacy code, unchanged semantics, memory-side execution: this example
// feeds the paper's Listing-1-style STAP C source through the MEALib
// source-to-source compiler, prints the transformed program and the
// generated TDL, then binds the generated plans to real buffers and runs
// them on the simulated accelerator layer — the full §3 software story.
package main

import (
	"fmt"
	"log"
	"os"

	"mealib"
)

// Problem-size macros (what -D would define when building the C program).
var symbols = map[string]int64{
	"N_CHAN": 4, "N_PULSES": 8, "N_RANGE": 64, "N_DOP": 8,
	"N_BLOCKS": 2, "N_STEERING": 4, "TDOF": 2,
	"TDOF_NCHAN": 8, "TBS": 16, "CELL_DIM": 16 * 8,
	"NULL": 0, "FFTW_FORWARD": 0, "FFTW_WISDOM_ONLY": 0,
}

func main() {
	src, err := os.ReadFile("internal/ccompiler/testdata/stap.c")
	if err != nil {
		src, err = os.ReadFile("../../internal/ccompiler/testdata/stap.c")
		if err != nil {
			log.Fatal("run from the repository root: ", err)
		}
	}

	prog, err := mealib.CompileC(string(src), symbols)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== compilation summary ===")
	fmt.Println(prog.Summary())
	fmt.Println("=== transformed source (excerpt) ===")
	out := prog.Source()
	if len(out) > 1800 {
		out = out[:1800] + "\n  ...\n"
	}
	fmt.Println(out)

	// Allocate the buffers the compiler discovered and run the plans.
	sys, err := mealib.New()
	if err != nil {
		log.Fatal(err)
	}
	elems := map[string]int{
		"datacube":                    int(symbols["N_CHAN"] * symbols["N_PULSES"] * symbols["N_RANGE"]),
		"datacube_pulse_major_padded": int(symbols["N_CHAN"] * symbols["N_PULSES"] * symbols["N_RANGE"]),
		"datacube_doppler_major":      int(symbols["N_CHAN"] * symbols["N_PULSES"] * symbols["N_RANGE"]),
		"adaptive_weights":            int(symbols["N_DOP"] * symbols["N_BLOCKS"] * symbols["N_STEERING"] * symbols["TDOF_NCHAN"]),
		"snapshots":                   int(symbols["N_DOP"] * symbols["N_BLOCKS"] * symbols["CELL_DIM"]),
		"prods":                       int(symbols["N_DOP"] * symbols["N_BLOCKS"] * symbols["N_STEERING"] * symbols["TBS"]),
	}
	floatElems := map[string]int{
		"gamma_weight": int(symbols["N_DOP"] * symbols["N_BLOCKS"] * symbols["TDOF_NCHAN"]),
		"acc_weight":   int(symbols["TDOF_NCHAN"]),
	}
	buffers := map[string]mealib.BufferBinding{}
	for name, n := range elems {
		b, err := sys.AllocComplex64(n)
		if err != nil {
			log.Fatal(err)
		}
		data := make([]complex64, n)
		for i := range data {
			data[i] = complex(float32(i%13)/13, float32(i%7)/7)
		}
		if err := b.Set(data); err != nil {
			log.Fatal(err)
		}
		buffers[name] = mealib.BindComplex64(b)
	}
	for name, n := range floatElems {
		b, err := sys.AllocFloat32(n)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.Set(make([]float32, n)); err != nil {
			log.Fatal(err)
		}
		buffers[name] = mealib.BindFloat32(b)
	}

	runs, err := prog.Execute(sys, buffers, symbols)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== execution ===")
	for i, r := range runs {
		fmt.Printf("plan %d: %d accelerator activations, %v total, %v\n",
			i, r.Comps, r.Time, r.Energy)
	}
	fmt.Printf("\n%d library calls covered by %d descriptor invocations (paper: 17M -> 3)\n",
		prog.CoveredCalls(), prog.Descriptors())
}
