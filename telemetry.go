package mealib

import (
	"io"

	"mealib/internal/mealibrt"
	"mealib/internal/telemetry"
)

// Telemetry collects structured execution traces and metrics from a System.
// Attach one with WithTelemetry, run the workload, then export:
//
//	tel := mealib.NewTelemetry()
//	sys, _ := mealib.New(mealib.WithTelemetry(tel))
//	... run work ...
//	f, _ := os.Create("trace.json")
//	tel.WriteChromeTrace(f) // load in Perfetto or chrome://tracing
//
// The trace shows every layer of the stack on its own track — accelerator
// launches, plan lowering, scheduler waves and nodes, runtime submission and
// admission, flights, host library calls — with both modelled time and
// measured wall time. The metrics snapshot carries launch counts, wave-width
// histograms, admission stalls, bytes moved, and per-opcode time and energy.
//
// A System built without WithTelemetry pays nothing: the disabled
// instrumentation path is allocation-free no-ops.
type Telemetry struct {
	tr *telemetry.Tracer
}

// NewTelemetry builds an empty trace/metrics collector.
func NewTelemetry() *Telemetry { return &Telemetry{tr: telemetry.New()} }

// WithTelemetry attaches the collector to a System. One collector may be
// shared across systems; their events land on separate tracks.
func WithTelemetry(t *Telemetry) Option {
	return func(c *mealibrt.Config) { c.Tracer = t.tr }
}

// WriteChromeTrace writes the collected events as Chrome trace_event JSON
// (chrome://tracing and Perfetto both load it). Call it only after the
// traced work has completed.
func (t *Telemetry) WriteChromeTrace(w io.Writer) error { return t.tr.WriteChromeTrace(w) }

// WriteMetricsJSON writes the counter/gauge/histogram snapshot as indented
// JSON.
func (t *Telemetry) WriteMetricsJSON(w io.Writer) error { return t.tr.Metrics().WriteJSON(w) }

// Summary renders a human-readable digest: event and track counts, span
// totals per kind, and every metric.
func (t *Telemetry) Summary() string { return t.tr.Summary() }
