#!/bin/sh
# check.sh — the full local gate: build, vet, lint (cmd/mealint), then the
# test suite under the race detector. CI and pre-commit both run exactly
# this; a clean exit here means the tree is submittable.
set -eu
cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go run ./cmd/mealint ./..."
go run ./cmd/mealint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "check.sh: all gates passed"
