#!/bin/sh
# check.sh — the full local gate: build, vet, lint (cmd/mealint), then the
# test suite under the race detector. CI and pre-commit both run exactly
# this; a clean exit here means the tree is submittable.
set -eu
cd "$(dirname "$0")"

# One cleanup handler for every temporary directory the gates below create:
# registering a second `trap ... EXIT` silently replaces the first, so each
# gate appends to this list instead of installing its own trap.
tmpdirs=""
cleanup() {
	# shellcheck disable=SC2086 # word-splitting the list is the point
	[ -n "$tmpdirs" ] && rm -rf $tmpdirs
}
trap cleanup EXIT

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go run ./cmd/mealint ./..."
go run ./cmd/mealint ./...

echo "==> scheduler differentials (serial vs wavefront, both paths, -race)"
go test -race -run 'Differential|Submit|ExplainPlan|PlanInterleaves' \
	./internal/accel ./internal/mealibrt

echo "==> go test -race ./..."
go test -race ./...

echo "==> mealint flag smoke (-analyzers filter, -json output)"
test "$(go run ./cmd/mealint -analyzers addrflow -json ./internal/phys)" = "[]"

echo "==> mealib-bench -micro smoke (AXPY, scheduler on/off)"
microdir=$(mktemp -d)
tmpdirs="$tmpdirs $microdir"
go run ./cmd/mealib-bench -micro "$microdir" -ops AXPY >/dev/null
test -s "$microdir/BENCH_AXPY.json"
grep -q speedup_vs_serial "$microdir/BENCH_AXPY.json"

echo "==> descriptor fusion gate (CHAIN micro, bytes moved must drop)"
go test -race -run 'TestFusionGate' -count=1 ./internal/exp

echo "==> mealib-bench fused columns smoke (CHAIN, fusion on/off)"
chaindir=$(mktemp -d)
tmpdirs="$tmpdirs $chaindir"
go run ./cmd/mealib-bench -micro "$chaindir" -ops CHAIN >/dev/null
grep -q fused_ns_per_op "$chaindir/BENCH_CHAIN.json"
grep -q dram_bytes_per_op "$chaindir/BENCH_CHAIN.json"

echo "==> mealib-trace e2e smoke (traced micro AXPY, validated export)"
tracedir=$(mktemp -d)
tmpdirs="$tmpdirs $tracedir"
# The CLI validates the trace itself (monotone timestamps, matched B/E
# spans) and exits non-zero on a bad one; here we additionally check both
# artifacts landed with content.
go run ./cmd/mealib-trace -workload micro -op AXPY -out "$tracedir" >/dev/null
grep -q traceEvents "$tracedir/trace.json"
grep -q 'accel.launches' "$tracedir/metrics.json"

echo "==> mealibd smoke gate (unix socket, 16 concurrent CHAIN tenants)"
go run ./cmd/mealibd -smoke 16 >/dev/null

echo "==> mealib-bench -serve smoke (loaded server, BENCH_SERVE.json)"
servedir=$(mktemp -d)
tmpdirs="$tmpdirs $servedir"
go run ./cmd/mealib-bench -serve "$servedir" -launches 16 >/dev/null
grep -q launches_per_sec "$servedir/BENCH_SERVE.json"
grep -q wait_p99_us "$servedir/BENCH_SERVE.json"

echo "==> out-of-core differential smoke (oversized AXPY staged through 512 KiB, prefetch on/off)"
oocdir=$(mktemp -d)
tmpdirs="$tmpdirs $oocdir"
# The benchmark itself verifies both runs bit for bit against the host
# reference and fails hard on a mismatch; here we additionally check the
# artifact recorded the differential and both timing columns.
go run ./cmd/mealib-bench -ooc "$oocdir" >/dev/null
grep -q '"bit_identical_to_host": true' "$oocdir/BENCH_OOC.json"
grep -q prefetch_speedup "$oocdir/BENCH_OOC.json"

echo "==> multi-stack graph gate (4-stack n=2^16 PageRank: bit-identity + per-link traffic conservation, -race)"
go test -race -run 'TestGraphGatePageRankSmoke' -count=1 ./internal/apps/graph

echo "==> mealib-bench -graph smoke (BENCH_GRAPH.json, verified stack sweep)"
gdir=$(mktemp -d)
tmpdirs="$tmpdirs $gdir"
# The benchmark verifies every (workload, stacks) configuration bit for
# bit against the serial reference and fails hard on divergence; here we
# additionally check the artifact recorded the differential and the
# multi-stack speedup column.
go run ./cmd/mealib-bench -graph "$gdir" >/dev/null
grep -q '"bit_identical_to_serial": true' "$gdir/BENCH_GRAPH.json"
grep -q speedup_vs_1stack "$gdir/BENCH_GRAPH.json"
grep -q inter_stack_bytes_per_iter "$gdir/BENCH_GRAPH.json"

echo "check.sh: all gates passed"
