package mealib

import (
	"mealib/internal/mealibrt"
	"mealib/internal/phys"
	"mealib/internal/units"
)

// Float32Buffer is a physically contiguous accelerator-visible buffer of
// float32 elements.
type Float32Buffer struct {
	buf *mealibrt.Buffer
	n   int
}

// AllocFloat32 allocates an n-element float32 buffer in the local memory
// stack's data space (mealib_mem_alloc).
func (s *System) AllocFloat32(n int) (*Float32Buffer, error) {
	return s.AllocFloat32On(0, n)
}

// AllocFloat32On allocates on an explicit memory stack (paper §3.5).
// Stack 0 is local to the accelerators; other stacks are remote.
func (s *System) AllocFloat32On(stack, n int) (*Float32Buffer, error) {
	if n <= 0 {
		return nil, errorf("non-positive buffer size %d", n)
	}
	b, err := s.rt.MemAllocOn(stack, units.Bytes(4*n))
	if err != nil {
		return nil, err
	}
	return &Float32Buffer{buf: b, n: n}, nil
}

// Len returns the element count.
func (b *Float32Buffer) Len() int { return b.n }

// Set copies v into the buffer starting at element 0.
func (b *Float32Buffer) Set(v []float32) error {
	if len(v) > b.n {
		return errorf("Set of %d elements into %d-element buffer", len(v), b.n)
	}
	return b.buf.StoreFloat32s(0, v)
}

// SetAt copies v into the buffer starting at element off.
func (b *Float32Buffer) SetAt(off int, v []float32) error {
	if off < 0 || off+len(v) > b.n {
		return errorf("SetAt [%d,%d) outside %d-element buffer", off, off+len(v), b.n)
	}
	return b.buf.StoreFloat32s(units.Bytes(4*off), v)
}

// Get copies out n elements starting at element off.
func (b *Float32Buffer) Get(off, n int) ([]float32, error) {
	if off < 0 || off+n > b.n {
		return nil, errorf("Get [%d,%d) outside %d-element buffer", off, off+n, b.n)
	}
	return b.buf.LoadFloat32s(units.Bytes(4*off), n)
}

// All copies out the whole buffer.
func (b *Float32Buffer) All() ([]float32, error) { return b.Get(0, b.n) }

// addr returns the physical address of element off.
func (b *Float32Buffer) addr(off int) phys.Addr {
	return b.buf.PA() + phys.Addr(4*off)
}

// Free releases the buffer.
func (b *Float32Buffer) Free(s *System) error { return s.rt.MemFree(b.buf) }

// Complex64Buffer is a physically contiguous accelerator-visible buffer of
// complex64 elements.
type Complex64Buffer struct {
	buf *mealibrt.Buffer
	n   int
}

// AllocComplex64 allocates an n-element complex64 buffer.
func (s *System) AllocComplex64(n int) (*Complex64Buffer, error) {
	return s.AllocComplex64On(0, n)
}

// AllocComplex64On allocates on an explicit memory stack (paper §3.5).
func (s *System) AllocComplex64On(stack, n int) (*Complex64Buffer, error) {
	if n <= 0 {
		return nil, errorf("non-positive buffer size %d", n)
	}
	b, err := s.rt.MemAllocOn(stack, units.Bytes(8*n))
	if err != nil {
		return nil, err
	}
	return &Complex64Buffer{buf: b, n: n}, nil
}

// Len returns the element count.
func (b *Complex64Buffer) Len() int { return b.n }

// Set copies v into the buffer starting at element 0.
func (b *Complex64Buffer) Set(v []complex64) error {
	if len(v) > b.n {
		return errorf("Set of %d elements into %d-element buffer", len(v), b.n)
	}
	return b.buf.StoreComplex64s(0, v)
}

// Get copies out n elements starting at element off.
func (b *Complex64Buffer) Get(off, n int) ([]complex64, error) {
	if off < 0 || off+n > b.n {
		return nil, errorf("Get [%d,%d) outside %d-element buffer", off, off+n, b.n)
	}
	return b.buf.LoadComplex64s(units.Bytes(8*off), n)
}

// All copies out the whole buffer.
func (b *Complex64Buffer) All() ([]complex64, error) { return b.Get(0, b.n) }

func (b *Complex64Buffer) addr(off int) phys.Addr {
	return b.buf.PA() + phys.Addr(8*off)
}

// Free releases the buffer.
func (b *Complex64Buffer) Free(s *System) error { return s.rt.MemFree(b.buf) }

// Int32Buffer holds CSR index arrays for the SPMV accelerator.
type Int32Buffer struct {
	buf *mealibrt.Buffer
	n   int
}

// AllocInt32 allocates an n-element int32 buffer.
func (s *System) AllocInt32(n int) (*Int32Buffer, error) {
	if n <= 0 {
		return nil, errorf("non-positive buffer size %d", n)
	}
	b, err := s.rt.MemAlloc(units.Bytes(4 * n))
	if err != nil {
		return nil, err
	}
	return &Int32Buffer{buf: b, n: n}, nil
}

// Len returns the element count.
func (b *Int32Buffer) Len() int { return b.n }

// Set copies v into the buffer.
func (b *Int32Buffer) Set(v []int32) error {
	if len(v) > b.n {
		return errorf("Set of %d elements into %d-element buffer", len(v), b.n)
	}
	return b.buf.StoreInt32s(0, v)
}

// All copies out the whole buffer.
func (b *Int32Buffer) All() ([]int32, error) { return b.buf.LoadInt32s(0, b.n) }

func (b *Int32Buffer) addr() phys.Addr { return b.buf.PA() }

// Free releases the buffer.
func (b *Int32Buffer) Free(s *System) error { return s.rt.MemFree(b.buf) }
