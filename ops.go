package mealib

import (
	"mealib/internal/accel"
	"mealib/internal/descriptor"
	"mealib/internal/kernels"
	"mealib/internal/sparse"
)

// One-shot operations: each builds a single-pass descriptor, executes it on
// the accelerator layer, and returns the run report. These mirror the
// library APIs of the paper's Table 1.

// Saxpy computes y += alpha*x on the AXPY accelerator.
func (s *System) Saxpy(alpha float32, x, y *Float32Buffer) (*Run, error) {
	if x.Len() != y.Len() {
		return nil, errorf("saxpy: length mismatch %d vs %d", x.Len(), y.Len())
	}
	d := &descriptor.Descriptor{}
	if err := d.AddComp(descriptor.OpAXPY, accel.AxpyArgs{
		N: int64(x.Len()), Alpha: alpha, X: x.addr(0), Y: y.addr(0), IncX: 1, IncY: 1,
	}.Params()); err != nil {
		return nil, err
	}
	d.AddEndPass()
	p, err := s.rt.AccPlanDescriptor(d)
	if err != nil {
		return nil, err
	}
	return s.execute(p)
}

// Sdot computes the inner product of x and y on the DOT accelerator.
func (s *System) Sdot(x, y *Float32Buffer) (float32, *Run, error) {
	if x.Len() != y.Len() {
		return 0, nil, errorf("sdot: length mismatch %d vs %d", x.Len(), y.Len())
	}
	out, err := s.AllocFloat32(1)
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = out.Free(s) }()
	d := &descriptor.Descriptor{}
	if err := d.AddComp(descriptor.OpDOT, accel.DotArgs{
		N: int64(x.Len()), X: x.addr(0), Y: y.addr(0), Out: out.addr(0), IncX: 1, IncY: 1,
	}.Params()); err != nil {
		return 0, nil, err
	}
	d.AddEndPass()
	p, err := s.rt.AccPlanDescriptor(d)
	if err != nil {
		return 0, nil, err
	}
	run, err := s.execute(p)
	if err != nil {
		return 0, nil, err
	}
	v, err := out.Get(0, 1)
	if err != nil {
		return 0, nil, err
	}
	return v[0], run, nil
}

// Cdotc computes the conjugated complex inner product on the DOT
// accelerator (the cblas_cdotc_sub mapping of Table 1).
func (s *System) Cdotc(x, y *Complex64Buffer) (complex64, *Run, error) {
	if x.Len() != y.Len() {
		return 0, nil, errorf("cdotc: length mismatch %d vs %d", x.Len(), y.Len())
	}
	out, err := s.AllocComplex64(1)
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = out.Free(s) }()
	d := &descriptor.Descriptor{}
	if err := d.AddComp(descriptor.OpDOT, accel.DotArgs{
		N: int64(x.Len()), Complex: true,
		X: x.addr(0), Y: y.addr(0), Out: out.addr(0), IncX: 1, IncY: 1,
	}.Params()); err != nil {
		return 0, nil, err
	}
	d.AddEndPass()
	p, err := s.rt.AccPlanDescriptor(d)
	if err != nil {
		return 0, nil, err
	}
	run, err := s.execute(p)
	if err != nil {
		return 0, nil, err
	}
	v, err := out.Get(0, 1)
	if err != nil {
		return 0, nil, err
	}
	return v[0], run, nil
}

// Sgemv computes y = alpha*A*x + beta*y for a row-major m x n matrix on the
// GEMV accelerator.
func (s *System) Sgemv(m, n int, alpha float32, a *Float32Buffer, x *Float32Buffer, beta float32, y *Float32Buffer) (*Run, error) {
	if a.Len() < m*n || x.Len() < n || y.Len() < m {
		return nil, errorf("sgemv: buffers too small for %dx%d", m, n)
	}
	d := &descriptor.Descriptor{}
	if err := d.AddComp(descriptor.OpGEMV, accel.GemvArgs{
		M: int64(m), N: int64(n), Alpha: alpha, Beta: beta,
		A: a.addr(0), Lda: int64(n), X: x.addr(0), Y: y.addr(0),
	}.Params()); err != nil {
		return nil, err
	}
	d.AddEndPass()
	p, err := s.rt.AccPlanDescriptor(d)
	if err != nil {
		return nil, err
	}
	return s.execute(p)
}

// CSRMatrix is a sparse matrix staged into accelerator-visible memory.
type CSRMatrix struct {
	Rows, Cols int
	NNZ        int
	rowPtr     *Int32Buffer
	colIdx     *Int32Buffer
	values     *Float32Buffer
}

// UploadCSR stages a CSR matrix into the data space.
func (s *System) UploadCSR(m *sparse.CSR) (*CSRMatrix, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.NNZ() == 0 {
		return nil, errorf("empty sparse matrix")
	}
	rowPtr, err := s.AllocInt32(len(m.RowPtr))
	if err != nil {
		return nil, err
	}
	colIdx, err := s.AllocInt32(m.NNZ())
	if err != nil {
		return nil, err
	}
	values, err := s.AllocFloat32(m.NNZ())
	if err != nil {
		return nil, err
	}
	if err := rowPtr.Set(m.RowPtr); err != nil {
		return nil, err
	}
	if err := colIdx.Set(m.ColIdx); err != nil {
		return nil, err
	}
	if err := values.Set(m.Values); err != nil {
		return nil, err
	}
	return &CSRMatrix{
		Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ(),
		rowPtr: rowPtr, colIdx: colIdx, values: values,
	}, nil
}

// Spmv computes y = A*x on the SPMV accelerator.
func (s *System) Spmv(a *CSRMatrix, x, y *Float32Buffer) (*Run, error) {
	if x.Len() < a.Cols || y.Len() < a.Rows {
		return nil, errorf("spmv: vector sizes %d/%d for %dx%d matrix", x.Len(), y.Len(), a.Rows, a.Cols)
	}
	d := &descriptor.Descriptor{}
	if err := d.AddComp(descriptor.OpSPMV, accel.SpmvArgs{
		M: int64(a.Rows), Cols: int64(a.Cols), NNZ: int64(a.NNZ),
		RowPtr: a.rowPtr.addr(), ColIdx: a.colIdx.addr(), Values: a.values.addr(0),
		X: x.addr(0), Y: y.addr(0),
	}.Params()); err != nil {
		return nil, err
	}
	d.AddEndPass()
	p, err := s.rt.AccPlanDescriptor(d)
	if err != nil {
		return nil, err
	}
	return s.execute(p)
}

// Resample interpolates src onto dst's grid (linear or cubic) on the RESMP
// accelerator.
func (s *System) Resample(src, dst *Float32Buffer, cubic bool) (*Run, error) {
	kind := int64(kernels.InterpLinear)
	if cubic {
		kind = int64(kernels.InterpCubic)
	}
	d := &descriptor.Descriptor{}
	if err := d.AddComp(descriptor.OpRESMP, accel.ResmpArgs{
		NIn: int64(src.Len()), NOut: int64(dst.Len()), Kind: kind,
		Src: src.addr(0), Dst: dst.addr(0),
	}.Params()); err != nil {
		return nil, err
	}
	d.AddEndPass()
	p, err := s.rt.AccPlanDescriptor(d)
	if err != nil {
		return nil, err
	}
	return s.execute(p)
}

// FFT transforms howMany contiguous length-n signals in place on the FFT
// accelerator (forward when inverse is false; the inverse is unscaled,
// FFTW-style).
func (s *System) FFT(data *Complex64Buffer, n, howMany int, inverse bool) (*Run, error) {
	if n < 1 || howMany < 1 || data.Len() < n*howMany {
		return nil, errorf("fft: %d transforms of %d exceed buffer %d", howMany, n, data.Len())
	}
	d := &descriptor.Descriptor{}
	if err := d.AddComp(descriptor.OpFFT, accel.FFTArgs{
		N: int64(n), Inverse: inverse, HowMany: int64(howMany),
		Src: data.addr(0), Dst: data.addr(0),
	}.Params()); err != nil {
		return nil, err
	}
	d.AddEndPass()
	p, err := s.rt.AccPlanDescriptor(d)
	if err != nil {
		return nil, err
	}
	return s.execute(p)
}

// Transpose writes the transpose of the rows x cols matrix src into dst on
// the RESHP engine (mkl_somatcopy-style; use equal buffers and rows==cols
// for the in-place mkl_simatcopy behaviour).
func (s *System) Transpose(rows, cols int, src, dst *Float32Buffer) (*Run, error) {
	if src.Len() < rows*cols || dst.Len() < rows*cols {
		return nil, errorf("transpose: buffers too small for %dx%d", rows, cols)
	}
	d := &descriptor.Descriptor{}
	if err := d.AddComp(descriptor.OpRESHP, accel.ReshpArgs{
		Rows: int64(rows), Cols: int64(cols), Elem: accel.ElemF32,
		Src: src.addr(0), Dst: dst.addr(0),
	}.Params()); err != nil {
		return nil, err
	}
	d.AddEndPass()
	p, err := s.rt.AccPlanDescriptor(d)
	if err != nil {
		return nil, err
	}
	return s.execute(p)
}

// TransposeC64 is Transpose for complex64 matrices.
func (s *System) TransposeC64(rows, cols int, src, dst *Complex64Buffer) (*Run, error) {
	if src.Len() < rows*cols || dst.Len() < rows*cols {
		return nil, errorf("transpose: buffers too small for %dx%d", rows, cols)
	}
	d := &descriptor.Descriptor{}
	if err := d.AddComp(descriptor.OpRESHP, accel.ReshpArgs{
		Rows: int64(rows), Cols: int64(cols), Elem: accel.ElemC64,
		Src: src.addr(0), Dst: dst.addr(0),
	}.Params()); err != nil {
		return nil, err
	}
	d.AddEndPass()
	p, err := s.rt.AccPlanDescriptor(d)
	if err != nil {
		return nil, err
	}
	return s.execute(p)
}
