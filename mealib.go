// Package mealib is the public API of the MEALib reproduction: a
// hardware/software co-designed system that executes memory-bounded library
// operations (BLAS level 1/2, sparse matrix-vector products, resampling,
// FFTs and reshapes) on accelerators integrated into simulated 3D-stacked
// DRAM, while compute-bounded work stays on the host
// ("Enabling Portable Energy Efficiency with Memory Accelerated Library",
// MICRO-48, 2015).
//
// A System owns one accelerated memory stack: a physical address space, the
// device driver with its physically contiguous data and command spaces, and
// the accelerator layer. Buffers allocated from the System are visible to
// both the host (your Go code) and the accelerators. Operations execute
// functionally — results are real — and every run reports the modelled
// time and energy of the simulated hardware.
//
//	sys, _ := mealib.New()
//	x, _ := sys.AllocFloat32(1 << 20)
//	y, _ := sys.AllocFloat32(1 << 20)
//	x.Set(xs)
//	y.Set(ys)
//	run, _ := sys.Saxpy(2.0, x, y) // y += 2x on the AXPY accelerator
//	fmt.Println(run.Time, run.Energy)
//
// Multi-accelerator datapaths (the paper's PASS chaining) and hardware
// loops (LOOP descriptors that compact millions of library calls into one
// invocation) are built with NewPlan. Legacy C sources are translated with
// CompileC.
package mealib

import (
	"context"
	"fmt"

	"mealib/internal/accel"
	"mealib/internal/cpu"
	"mealib/internal/mealibrt"
	"mealib/internal/units"
)

// Option customises a System.
type Option func(*mealibrt.Config)

// WithDataSpace sets the physically contiguous data space size per stack
// (default 1 GiB).
func WithDataSpace(n int64) Option {
	return func(c *mealibrt.Config) { c.Driver.DataSize = units.Bytes(n) }
}

// WithStacks sets the number of memory stacks (paper Figure 2: a host in
// front of multiple stacks). Stack 0 is the accelerators' Local Memory
// Stack; buffers placed on other stacks reach the accelerators over the
// inter-stack links, at link bandwidth.
func WithStacks(n int) Option {
	return func(c *mealibrt.Config) { c.Driver.Stacks = n }
}

// WithAccelerator replaces the accelerator-layer configuration (frequency,
// tiles, bandwidth model) — the knob the design-space studies turn.
func WithAccelerator(cfg *accel.Config) Option {
	return func(c *mealibrt.Config) { c.Accel = cfg }
}

// WithHost replaces the host processor model.
func WithHost(h *cpu.Host) Option {
	return func(c *mealibrt.Config) { c.Host = h }
}

// WithWorkers sets the worker-pool size the functional interpreter fans
// independent LOOP iterations across: 0 selects min(GOMAXPROCS, tiles), 1
// restores serial execution. Parallel and serial runs produce byte-identical
// buffers and identical reports.
func WithWorkers(n int) Option {
	return func(c *mealibrt.Config) { c.Workers = n }
}

// WithMaxInFlight caps the number of plans concurrently in flight through
// InstalledPlan.Submit (0 = unlimited). Submissions past the cap block
// until a flight completes.
func WithMaxInFlight(n int) Option {
	return func(c *mealibrt.Config) { c.MaxInFlight = n }
}

// WithWavePipelining admits conflicting plans immediately and pipelines
// them at wave granularity: a dependent plan's first waves start as the
// producer's last waves drain, instead of the whole launches serialising.
// Results are bit-identical either way; the model timeline shows the
// overlap.
func WithWavePipelining() Option {
	return func(c *mealibrt.Config) { c.WavePipeline = true }
}

// WithoutFusion disables descriptor fusion: producer→consumer pass chains
// stay separate passes and their intermediates round-trip through DRAM, as
// in the paper's one-descriptor-per-call model. Results are bit-identical
// with fusion on or off; only time, energy and DRAM traffic differ. Used
// for differential testing and for measuring the traffic fusion elides.
func WithoutFusion() Option {
	return func(c *mealibrt.Config) { c.NoFusion = true }
}

// WithStaging carves a double-buffered staging region of n bytes out of
// stack 0's data space and enables out-of-core execution: allocations past
// the stack's physical capacity fall back to host-backed buffers, and
// descriptors naming them run as chunked staged launches, bit-identical to
// the in-core path. Zero (the default) disables out-of-core execution, and
// over-capacity allocations fail with a typed error.
func WithStaging(n int64) Option {
	return func(c *mealibrt.Config) { c.Driver.StagingSize = units.Bytes(n) }
}

// WithoutPrefetch runs out-of-core chunk schedules synchronously (stage in,
// execute, write back, one chunk at a time) instead of prefetching the next
// chunk's tiles under the current chunk's execution. Results are
// bit-identical; only the modelled overlap differs.
func WithoutPrefetch() Option {
	return func(c *mealibrt.Config) { c.NoPrefetch = true }
}

// AcceleratorConfig returns the paper's accelerator layer configuration for
// customisation with WithAccelerator.
func AcceleratorConfig() *accel.Config { return accel.MEALibConfig() }

// HaswellHost returns the paper's host model for customisation with
// WithHost.
func HaswellHost() *cpu.Host { return cpu.Haswell() }

// System is one host plus one accelerated memory stack.
type System struct {
	rt *mealibrt.Runtime
}

// New builds a system with the paper's default configuration.
func New(opts ...Option) (*System, error) {
	cfg := mealibrt.DefaultConfig()
	for _, opt := range opts {
		opt(cfg)
	}
	rt, err := mealibrt.New(cfg)
	if err != nil {
		return nil, err
	}
	return &System{rt: rt}, nil
}

// Runtime exposes the underlying MEALib runtime for advanced use (raw
// descriptors, TDL programs, the device driver).
func (s *System) Runtime() *mealibrt.Runtime { return s.rt }

// Run reports one accelerator invocation: what executed, how long the
// simulated hardware took, and the energy it consumed.
type Run struct {
	// Time covers the invocation end to end: host-side overhead (cache
	// flush, descriptor copy) plus accelerator execution.
	Time units.Seconds
	// Energy covers overhead, accelerators and the idled host.
	Energy units.Joules
	// AccelTime/AccelEnergy isolate the accelerator layer.
	AccelTime   units.Seconds
	AccelEnergy units.Joules
	// Comps counts accelerator activations (loop iterations included).
	Comps int64
}

func runOf(inv *mealibrt.Invocation) *Run {
	return &Run{
		Time:        inv.TotalTime(),
		Energy:      inv.TotalEnergy(),
		AccelTime:   inv.Report.Time,
		AccelEnergy: inv.Report.Energy,
		Comps:       inv.Report.Comps,
	}
}

// Stats aggregates all invocations since the system was created.
type Stats struct {
	Invocations    int64
	AccelTime      units.Seconds
	AccelEnergy    units.Joules
	OverheadTime   units.Seconds
	OverheadEnergy units.Joules
	// HostIdleEnergy is the energy the blocked host burned while flights
	// were in the air. Overlapping flights share the idle window — the
	// window is billed once, not once per flight.
	HostIdleEnergy units.Joules
}

// Stats returns the accumulated accounting.
func (s *System) Stats() Stats {
	st := s.rt.Stats()
	return Stats{
		Invocations:    st.Invocations,
		AccelTime:      st.AccelTime,
		AccelEnergy:    st.AccelEnergy,
		OverheadTime:   st.OverheadTime,
		OverheadEnergy: st.OverheadEnergy,
		HostIdleEnergy: st.HostIdleEnergy,
	}
}

// execute runs a finished plan once and destroys it.
func (s *System) execute(p *mealibrt.Plan) (*Run, error) {
	inv, err := p.Execute(context.Background())
	if err != nil {
		_ = p.Destroy()
		return nil, err
	}
	if err := p.Destroy(); err != nil {
		return nil, err
	}
	return runOf(inv), nil
}

// errorf wraps facade errors uniformly.
func errorf(format string, args ...any) error {
	return fmt.Errorf("mealib: "+format, args...)
}
