package mealib

import (
	"context"

	"fmt"

	"mealib/internal/accel"
	"mealib/internal/descriptor"
	"mealib/internal/kernels"
	"mealib/internal/mealibrt"
	"mealib/internal/units"
)

// Comp is one accelerator invocation inside a plan.
type Comp struct {
	op     descriptor.OpCode
	params descriptor.Params
	err    error
}

// Strides expresses per-loop-level buffer advancement in *elements*,
// outermost level first (up to four levels, matching the hardware LOOP).
type Strides []int

func (st Strides) bytesPerElem(elem int64) accel.Strides {
	var out accel.Strides
	off := len(out) - len(st)
	for i, v := range st {
		if off+i >= 0 {
			out[off+i] = int64(v) * elem
		}
	}
	return out
}

// SaxpyComp builds a strided AXPY invocation for use inside Pass/Loop.
func SaxpyComp(n int, alpha float32, x *Float32Buffer, y *Float32Buffer, xStride, yStride Strides) Comp {
	return Comp{op: descriptor.OpAXPY, params: accel.AxpyArgs{
		N: int64(n), Alpha: alpha, X: x.addr(0), Y: y.addr(0), IncX: 1, IncY: 1,
		LoopStrideX: xStride.bytesPerElem(4), LoopStrideY: yStride.bytesPerElem(4),
	}.Params()}
}

// CdotcComp builds a complex inner-product invocation. incY strides the y
// reads (the STAP snapshot access pattern).
func CdotcComp(n int, x, y, out *Complex64Buffer, incY int, xStride, yStride, outStride Strides) Comp {
	return Comp{op: descriptor.OpDOT, params: accel.DotArgs{
		N: int64(n), Complex: true,
		X: x.addr(0), Y: y.addr(0), Out: out.addr(0), IncX: 1, IncY: int64(incY),
		LoopStrideX:   xStride.bytesPerElem(8),
		LoopStrideY:   yStride.bytesPerElem(8),
		LoopStrideOut: outStride.bytesPerElem(8),
	}.Params()}
}

// FFTComp builds a batched FFT invocation.
func FFTComp(n, howMany int, data *Complex64Buffer, inverse bool, stride Strides) Comp {
	s := stride.bytesPerElem(8)
	return Comp{op: descriptor.OpFFT, params: accel.FFTArgs{
		N: int64(n), Inverse: inverse, HowMany: int64(howMany),
		Src: data.addr(0), Dst: data.addr(0),
		LoopStrideSrc: s, LoopStrideDst: s,
	}.Params()}
}

// FFTCompInto is FFTComp with distinct source and destination buffers.
func FFTCompInto(n, howMany int, src, dst *Complex64Buffer, inverse bool, stride Strides) Comp {
	s := stride.bytesPerElem(8)
	return Comp{op: descriptor.OpFFT, params: accel.FFTArgs{
		N: int64(n), Inverse: inverse, HowMany: int64(howMany),
		Src: src.addr(0), Dst: dst.addr(0),
		LoopStrideSrc: s, LoopStrideDst: s,
	}.Params()}
}

// ResampleComp builds a resampling invocation (complex=false interprets the
// buffers as float32 data laid out in the complex buffer's space).
func ResampleC64Comp(nIn, nOut int, src, dst *Complex64Buffer, cubic bool, srcStride, dstStride Strides) Comp {
	kind := accel.ResmpComplex + int64(kernels.InterpLinear)
	if cubic {
		kind = accel.ResmpComplex + int64(kernels.InterpCubic)
	}
	return Comp{op: descriptor.OpRESMP, params: accel.ResmpArgs{
		NIn: int64(nIn), NOut: int64(nOut), Kind: kind,
		Src: src.addr(0), Dst: dst.addr(0),
		LoopStrideSrc: srcStride.bytesPerElem(8), LoopStrideDst: dstStride.bytesPerElem(8),
	}.Params()}
}

// TransposeC64Comp builds a complex reshape invocation.
func TransposeC64Comp(rows, cols int, src, dst *Complex64Buffer) Comp {
	return Comp{op: descriptor.OpRESHP, params: accel.ReshpArgs{
		Rows: int64(rows), Cols: int64(cols), Elem: accel.ElemC64,
		Src: src.addr(0), Dst: dst.addr(0),
	}.Params()}
}

// PlanBuilder assembles multi-pass, looped accelerator descriptors — the
// TDL structures of paper §3.4 — through a typed API.
type PlanBuilder struct {
	sys  *System
	desc *descriptor.Descriptor
	err  error
}

// NewPlan starts a descriptor.
func (s *System) NewPlan() *PlanBuilder {
	return &PlanBuilder{sys: s, desc: &descriptor.Descriptor{}}
}

// Pass appends one chained datapath: the output of each comp feeds the next
// through tile-local memory.
func (b *PlanBuilder) Pass(comps ...Comp) *PlanBuilder {
	if b.err != nil {
		return b
	}
	for _, c := range comps {
		if c.err != nil {
			b.err = c.err
			return b
		}
		if err := b.desc.AddComp(c.op, c.params); err != nil {
			b.err = err
			return b
		}
	}
	b.desc.AddEndPass()
	return b
}

// Chain appends one fused pass after statically verifying the
// producer→consumer handoffs: each comp's output span must be consumed
// whole by the next (same address, size and loop strides), no later stage
// may write memory an earlier stage reads, and the summed per-iteration
// intermediates must fit the aggregate tile-local memory. Unlike Pass —
// which trusts the caller to chain compatible comps — Chain rejects an
// unfusible pipeline at build time with a stage-level error.
func (b *PlanBuilder) Chain(comps ...Comp) *PlanBuilder {
	if b.err != nil {
		return b
	}
	if err := b.verifyChain(descriptor.LoopCounts{}, comps); err != nil {
		b.err = err
		return b
	}
	return b.Pass(comps...)
}

// ChainLoop is Chain under a hardware loop nest (counts outermost first):
// the handoff verification must hold at every iteration of the nest, so
// per-level stride mismatches between producer and consumer are rejected
// even when the base addresses line up.
func (b *PlanBuilder) ChainLoop(counts []int, comps ...Comp) *PlanBuilder {
	if b.err != nil {
		return b
	}
	var lc descriptor.LoopCounts
	for i := range lc {
		lc[i] = 1
	}
	if len(counts) == 0 || len(counts) > len(lc) {
		b.err = fmt.Errorf("mealib: chain loop needs 1..%d levels, got %d", len(lc), len(counts))
		return b
	}
	off := len(lc) - len(counts)
	for i, c := range counts {
		lc[off+i] = uint32(c)
	}
	if err := b.verifyChain(lc, comps); err != nil {
		b.err = err
		return b
	}
	return b.Loop(counts, comps...)
}

func (b *PlanBuilder) verifyChain(counts descriptor.LoopCounts, comps []Comp) error {
	cc := make([]accel.ChainComp, len(comps))
	for i, c := range comps {
		if c.err != nil {
			return c.err
		}
		cc[i] = accel.ChainComp{Op: c.op, Params: c.params}
	}
	cfg := b.sys.rt.Layer().Config()
	_, err := accel.VerifyChain(cc, counts, cfg.LMBytes*units.Bytes(cfg.Tiles))
	return err
}

// Loop appends a hardware loop nest (counts outermost first) over one pass
// of comps whose stride fields advance per iteration.
func (b *PlanBuilder) Loop(counts []int, comps ...Comp) *PlanBuilder {
	if b.err != nil {
		return b
	}
	u := make([]uint32, len(counts))
	for i, c := range counts {
		u[i] = uint32(c)
	}
	if err := b.desc.AddLoop(u...); err != nil {
		b.err = err
		return b
	}
	for _, c := range comps {
		if c.err != nil {
			b.err = c.err
			return b
		}
		if err := b.desc.AddComp(c.op, c.params); err != nil {
			b.err = err
			return b
		}
	}
	b.desc.AddEndPass()
	b.desc.AddEndLoop()
	return b
}

// Build installs the descriptor in the command space. The plan can be
// executed repeatedly (mealib_acc_execute) and must be destroyed
// (mealib_acc_destroy).
func (b *PlanBuilder) Build() (*InstalledPlan, error) {
	if b.err != nil {
		return nil, b.err
	}
	p, err := b.sys.rt.AccPlanDescriptor(b.desc)
	if err != nil {
		return nil, err
	}
	return &InstalledPlan{p: p}, nil
}

// Run builds, executes once and destroys.
func (b *PlanBuilder) Run() (*Run, error) {
	ip, err := b.Build()
	if err != nil {
		return nil, err
	}
	defer func() { _ = ip.Destroy() }()
	return ip.Execute()
}

// InstalledPlan is a descriptor living in the command space.
type InstalledPlan struct {
	p *mealibrt.Plan
}

// Execute launches the plan.
func (ip *InstalledPlan) Execute() (*Run, error) {
	return ip.ExecuteContext(context.Background())
}

// ExecuteContext launches the plan under a context bounding the admission
// wait and the completion wait.
func (ip *InstalledPlan) ExecuteContext(ctx context.Context) (*Run, error) {
	inv, err := ip.p.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return runOf(inv), nil
}

// PendingRun is an in-flight plan execution started by Submit.
type PendingRun struct {
	pi *mealibrt.PendingInvocation
}

// Wait blocks until the flight completes and returns its Run.
func (pr *PendingRun) Wait() (*Run, error) {
	return pr.WaitContext(context.Background())
}

// WaitContext is Wait bounded by a context. Cancellation abandons the wait
// only — the flight runs to completion, and a later WaitContext can still
// collect it.
func (pr *PendingRun) WaitContext(ctx context.Context) (*Run, error) {
	inv, err := pr.pi.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return runOf(inv), nil
}

// Submit launches the plan without waiting for it. The runtime admits a
// flight only once its buffers no longer overlap any in-flight plan's, so
// plans over disjoint data execute concurrently while conflicting plans
// serialise — results are identical either way.
func (ip *InstalledPlan) Submit() (*PendingRun, error) {
	return ip.SubmitContext(context.Background())
}

// SubmitContext is Submit bounded by a context: cancellation or deadline
// abandons a submission still blocked in admission.
func (ip *InstalledPlan) SubmitContext(ctx context.Context) (*PendingRun, error) {
	pi, err := ip.p.Submit(ctx)
	if err != nil {
		return nil, err
	}
	return &PendingRun{pi: pi}, nil
}

// Destroy releases the command-space allocation.
func (ip *InstalledPlan) Destroy() error { return ip.p.Destroy() }
