package mealib

import (
	"mealib/internal/ccompiler"
	"mealib/internal/phys"
)

// CompiledProgram is the output of the source-to-source compiler over a
// legacy C translation unit: the transformed source, the generated
// accelerator plans, and the buffer inventory needed to bind them.
type CompiledProgram struct {
	res *ccompiler.Result
}

// CompileC runs the MEALib source-to-source compiler (paper §3.4) over a
// legacy C source. symbols supplies the compile-time integer constants
// (#define / -D values) that loop compaction needs.
func CompileC(src string, symbols map[string]int64) (*CompiledProgram, error) {
	res, err := ccompiler.Compile(src, ccompiler.Options{Symbols: symbols})
	if err != nil {
		return nil, err
	}
	return &CompiledProgram{res: res}, nil
}

// Source returns the transformed C source (malloc/free replaced with
// MEALib memory management, library calls replaced with accelerator plans).
func (c *CompiledProgram) Source() string { return c.res.Source }

// Summary describes the compilation (call sites, descriptors, compaction).
func (c *CompiledProgram) Summary() string { return c.res.Describe() }

// Descriptors returns the number of generated accelerator descriptors.
func (c *CompiledProgram) Descriptors() int { return c.res.Stats.Descriptors }

// CoveredCalls returns the dynamic library-call count the descriptors
// replace (the paper's "17M calls into 3 descriptors" accounting).
func (c *CompiledProgram) CoveredCalls() int64 { return c.res.Stats.CoveredCalls }

// BufferNames lists the accelerator-visible buffers the program declares,
// which Execute's binding must provide.
func (c *CompiledProgram) BufferNames() []string {
	var names []string
	for name := range c.res.Buffers {
		names = append(names, name)
	}
	return names
}

// BufferBinding maps a source-level buffer name to an allocated System
// buffer.
type BufferBinding struct {
	addr  phys.Addr
	elems int64
}

// BindFloat32 binds a float32 buffer.
func BindFloat32(b *Float32Buffer) BufferBinding {
	return BufferBinding{addr: b.addr(0), elems: int64(b.Len())}
}

// BindComplex64 binds a complex64 buffer.
func BindComplex64(b *Complex64Buffer) BufferBinding {
	return BufferBinding{addr: b.addr(0), elems: int64(b.Len())}
}

// BindInt32 binds an int32 buffer.
func BindInt32(b *Int32Buffer) BufferBinding {
	return BufferBinding{addr: b.addr(), elems: int64(b.Len())}
}

// Execute binds every generated plan against the provided buffers and
// runtime symbols, then runs them in program order on the system —
// the "link against the MEALib runtime and run" step of §3.5.
func (c *CompiledProgram) Execute(s *System, buffers map[string]BufferBinding, symbols map[string]int64) ([]*Run, error) {
	binding := &ccompiler.Binding{
		Buffers: make(map[string]ccompiler.BoundBuffer, len(buffers)),
		Ints:    symbols,
	}
	for name, b := range buffers {
		binding.Buffers[name] = ccompiler.BoundBuffer{PA: b.addr, Elems: b.elems}
	}
	var runs []*Run
	for _, plan := range c.res.Plans {
		tdlSrc, params, err := ccompiler.Bind(plan, binding)
		if err != nil {
			return runs, err
		}
		p, err := s.rt.AccPlan(tdlSrc, params)
		if err != nil {
			return runs, err
		}
		run, err := s.execute(p)
		if err != nil {
			return runs, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}
