// Command mealib-trace runs a workload through a telemetry-equipped MEALib
// runtime and writes its execution trace and metrics to disk.
//
// Usage:
//
//	mealib-trace -workload micro -op AXPY -out /tmp/t   # one micro op
//	mealib-trace -workload stap  -out /tmp/t            # hybrid STAP pipeline
//	mealib-trace -workload sar   -n 256 -out /tmp/t     # SAR image formation
//
// The output directory receives trace.json (Chrome trace_event format — load
// it in Perfetto or chrome://tracing) and metrics.json (the counter / gauge /
// histogram snapshot). A human-readable summary goes to stdout. The emitted
// trace is validated before exit; an invalid trace is a non-zero exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mealib/internal/apps/stap"
	"mealib/internal/exp"
	"mealib/internal/telemetry"
)

func main() {
	workload := flag.String("workload", "micro", "workload to trace: micro, stap, or sar")
	op := flag.String("op", "AXPY", "micro op for -workload micro (AXPY, DOT, FFT)")
	n := flag.Int("n", 128, "image size for -workload sar")
	size := flag.String("size", "small", "data set for -workload stap (tiny, small)")
	out := flag.String("out", ".", "directory for trace.json and metrics.json")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mealib-trace:", err)
		os.Exit(1)
	}

	tr := telemetry.New()
	switch *workload {
	case "micro":
		if err := exp.TraceMicro(tr, *op); err != nil {
			fail(err)
		}
	case "stap":
		p := stap.Small()
		if *size == "tiny" {
			p = stap.Params{Name: "tiny", NChan: 4, NPulses: 8, NRange: 256,
				NBlocks: 2, NSteering: 4, TDOF: 2, TBS: 16}
		}
		if err := exp.TraceSTAP(tr, p); err != nil {
			fail(err)
		}
	case "sar":
		if err := exp.TraceSAR(tr, *n); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown workload %q (want micro, stap, or sar)", *workload))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	tracePath := filepath.Join(*out, "trace.json")
	f, err := os.Create(tracePath)
	if err != nil {
		fail(err)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	// Self-check: refuse to ship a trace the validator rejects.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		fail(err)
	}
	chk, err := telemetry.ValidateChromeTrace(data)
	if err != nil {
		fail(fmt.Errorf("emitted trace failed validation: %w", err))
	}

	metricsPath := filepath.Join(*out, "metrics.json")
	m, err := os.Create(metricsPath)
	if err != nil {
		fail(err)
	}
	if err := tr.Metrics().WriteJSON(m); err != nil {
		fail(err)
	}
	if err := m.Close(); err != nil {
		fail(err)
	}

	fmt.Print(tr.Summary())
	fmt.Printf("\nwrote %s (%d events, tracks: %v)\nwrote %s\n",
		tracePath, chk.Events, chk.TrackKinds, metricsPath)
}
