// Command mealibcc is the MEALib source-to-source compiler CLI (paper
// §3.4): it reads a legacy C source that uses MKL/FFTW/OpenMP, identifies
// the accelerable library calls, and emits the transformed source plus the
// generated TDL programs.
//
// Usage:
//
//	mealibcc [-D NAME=VALUE ...] [-o out.c] [-summary] [-nocheck] input.c
//
// Every generated TDL program is run back through the parser and the static
// verifier (internal/analysis/tdlcheck) before the transformed source is
// emitted; -nocheck skips that pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mealib/internal/analysis/tdlcheck"
	"mealib/internal/ccompiler"
	"mealib/internal/tdl"
)

// defineFlags collects repeated -D NAME=VALUE flags.
type defineFlags map[string]int64

func (d defineFlags) String() string { return fmt.Sprintf("%v", map[string]int64(d)) }

func (d defineFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("expected NAME=VALUE, got %q", v)
	}
	n, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return fmt.Errorf("value of %s: %w", name, err)
	}
	d[name] = n
	return nil
}

func main() {
	defines := defineFlags{"NULL": 0, "FFTW_FORWARD": 0, "FFTW_WISDOM_ONLY": 0}
	out := flag.String("o", "", "write transformed source here (default stdout)")
	summary := flag.Bool("summary", false, "print the compilation summary instead of the source")
	nocheck := flag.Bool("nocheck", false, "skip the static verifier on generated TDL programs")
	flag.Var(defines, "D", "define an integer constant (repeatable): -D N_DOP=256")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mealibcc [-D NAME=VALUE ...] [-o out.c] [-summary] [-nocheck] input.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mealibcc:", err)
		os.Exit(1)
	}
	res, err := ccompiler.Compile(string(src), ccompiler.Options{Symbols: defines})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mealibcc:", err)
		os.Exit(1)
	}
	if !*nocheck {
		for _, plan := range res.Plans {
			prog, err := tdl.Parse(plan.TDL)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mealibcc: generated TDL for %s does not parse: %v\n", plan.Name, err)
				os.Exit(1)
			}
			if err := tdlcheck.VerifyProgram(prog); err != nil {
				fmt.Fprintf(os.Stderr, "mealibcc: generated TDL for %s rejected: %v\n", plan.Name, err)
				os.Exit(1)
			}
		}
	}
	if *summary {
		fmt.Print(res.Describe())
		return
	}
	if *out == "" {
		fmt.Print(res.Source)
		return
	}
	if err := os.WriteFile(*out, []byte(res.Source), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mealibcc:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mealibcc: %d library call sites -> %d descriptors (%d calls covered)\n",
		res.Stats.CallSites, res.Stats.Descriptors, res.Stats.CoveredCalls)
}
