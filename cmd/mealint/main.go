// Command mealint runs the MEALib static-analysis suite
// (internal/analysis) over the repository. It is built entirely on the
// standard library's go/parser, go/ast and go/types — the module has no
// external dependencies, and this tool keeps it that way.
//
// Usage:
//
//	mealint [-list] [-analyzers name,name] [-json] [packages]
//
// Package patterns are directories relative to the working directory;
// "dir/..." recurses (testdata, hidden and underscore directories are
// skipped). With no patterns, ./... is analyzed. Test files are included.
// -analyzers restricts the run to the named analyzers (-run is an alias,
// kept for compatibility); -json emits the diagnostics as a JSON array for
// CI annotation tooling. Exits 1 when any diagnostic is reported, 2 on
// usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mealib/internal/analysis"
)

// jsonDiag is one diagnostic in -json output form.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	names := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	run := flag.String("run", "", "alias for -analyzers")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-9s %s\n", a.Name(), a.Doc())
		}
		return
	}

	filter := *names
	if filter == "" {
		filter = *run
	}
	analyzers := analysis.Analyzers()
	if filter != "" {
		analyzers = nil
		for _, name := range strings.Split(filter, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "mealint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mealint:", err)
		os.Exit(2)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mealint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mealint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(cwd, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mealint:", err)
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, analyzers)
	rel := func(name string) string {
		if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     rel(d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "mealint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			pos := d.Pos
			pos.Filename = rel(pos.Filename)
			fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mealint: %d packages clean\n", len(pkgs))
}
