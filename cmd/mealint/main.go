// Command mealint runs the MEALib static-analysis suite
// (internal/analysis) over the repository. It is built entirely on the
// standard library's go/parser, go/ast and go/types — the module has no
// external dependencies, and this tool keeps it that way.
//
// Usage:
//
//	mealint [-list] [-run name,name] [packages]
//
// Package patterns are directories relative to the working directory;
// "dir/..." recurses (testdata, hidden and underscore directories are
// skipped). With no patterns, ./... is analyzed. Test files are included.
// Exits 1 when any diagnostic is reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mealib/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-9s %s\n", a.Name(), a.Doc())
		}
		return
	}

	analyzers := analysis.Analyzers()
	if *run != "" {
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "mealint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mealint:", err)
		os.Exit(2)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mealint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mealint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(cwd, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mealint:", err)
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mealint: %d packages clean\n", len(pkgs))
}
