// Command mealibd serves one MEALib runtime to many tenants over a
// length-prefixed binary protocol. Each connection is a session: a private
// buffer namespace under a memory quota, with launches interleaved fairly
// against every other tenant's and small compatible submissions coalesced
// into shared flights.
//
// Usage:
//
//	mealibd                              # serve on unix:/tmp/mealibd.sock
//	mealibd -listen tcp:127.0.0.1:9431   # serve on TCP
//	mealibd -quota 67108864              # 64 MiB default tenant quota
//	mealibd -smoke 16                    # self-test: 16 concurrent CHAIN
//	                                     # tenants against an in-process
//	                                     # endpoint, then exit
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mealib/internal/exp"
	"mealib/internal/mealibd"
	"mealib/internal/mealibrt"
	"mealib/internal/telemetry"
	"mealib/internal/units"
)

func main() {
	listen := flag.String("listen", "unix:/tmp/mealibd.sock", "endpoint as network:address (unix:PATH or tcp:HOST:PORT)")
	quota := flag.Int64("quota", 0, "default per-tenant memory quota in bytes (0 = unlimited)")
	inflight := flag.Int("max-inflight", 0, "default per-tenant in-flight launch cap (0 = unlimited)")
	queued := flag.Int("max-queued", 0, "default per-tenant admission queue cap (0 = unlimited)")
	batchMax := flag.Int("batch-max", 0, "max small descriptors coalesced per merged launch (0 = default 8, 1 = off)")
	batchBytes := flag.Int64("batch-bytes", 0, "footprint ceiling in bytes for a batchable descriptor (0 = default 256 KiB)")
	pipeline := flag.Bool("pipeline", true, "wave-granularity pipelining of dependent launches")
	staging := flag.Int64("staging", 0, "out-of-core staging region in bytes carved from stack 0 (0 = out-of-core off)")
	smoke := flag.Int("smoke", 0, "run the self-test with this many concurrent CHAIN tenants and exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mealibd:", err)
		os.Exit(1)
	}

	if *smoke > 0 {
		if err := exp.ServeSmoke(*smoke); err != nil {
			fail(err)
		}
		fmt.Printf("mealibd: smoke ok (%d concurrent CHAIN tenants, bit-identical results, clean shutdown)\n", *smoke)
		return
	}

	network, addr, ok := strings.Cut(*listen, ":")
	if !ok || (network != "unix" && network != "tcp") {
		fail(fmt.Errorf("bad -listen %q, want unix:PATH or tcp:HOST:PORT", *listen))
	}

	rcfg := mealibrt.DefaultConfig()
	rcfg.Tracer = telemetry.New()
	rcfg.WavePipeline = *pipeline
	rcfg.Driver.StagingSize = units.Bytes(*staging)
	rt, err := mealibrt.New(rcfg)
	if err != nil {
		fail(err)
	}
	srv, err := mealibd.New(mealibd.Config{
		Runtime:            rt,
		BatchMax:           *batchMax,
		BatchBytes:         units.Bytes(*batchBytes),
		DefaultQuota:       units.Bytes(*quota),
		DefaultMaxInFlight: *inflight,
		DefaultMaxQueued:   *queued,
	})
	if err != nil {
		fail(err)
	}

	if network == "unix" {
		// A stale socket from an unclean exit blocks the bind; remove it.
		if _, err := os.Stat(addr); err == nil {
			_ = os.Remove(addr)
		}
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		fail(err)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "mealibd: shutting down")
		_ = srv.Close()
	}()

	fmt.Printf("mealibd: serving on %s:%s\n", network, addr)
	if err := srv.Serve(ln); err != nil {
		fail(err)
	}
}
