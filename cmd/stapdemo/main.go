// Command stapdemo runs the paper's real-world application study (§5.5):
// the STAP radar pipeline on the optimized Haswell baseline versus MEALib,
// across the three data sets, printing the Figure 13 gains and the
// Figure 14 breakdown. With -functional it additionally executes a reduced
// problem end to end on the simulated hardware and verifies real data flow.
package main

import (
	"flag"
	"fmt"
	"os"

	"mealib/internal/apps/stap"
	"mealib/internal/mealibrt"
)

func main() {
	functional := flag.Bool("functional", false, "also run a reduced-size STAP functionally")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "stapdemo:", err)
		os.Exit(1)
	}

	fmt.Println("STAP: Space-Time Adaptive Processing on MEALib vs optimized Haswell baseline")
	fmt.Println()
	for _, p := range []stap.Params{stap.Small(), stap.Medium(), stap.Large()} {
		g, err := stap.Compare(p)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-7s  datacube %6.1f MB  %9d cdotc calls  perf gain %.2fx  EDP gain %.2fx\n",
			p.Name, float64(p.DatacubeElems())*8/1e6, p.DotCalls(), g.Performance, g.EDP)
	}

	g, err := stap.Compare(stap.Large())
	if err != nil {
		fail(err)
	}
	ht, he := g.MEALib.HostShare()
	ts, es := g.MEALib.AccelShares()
	fmt.Println()
	fmt.Printf("breakdown (large): host %.0f%% of time, %.0f%% of energy\n", 100*ht, 100*he)
	for _, op := range []string{"DOT", "FFT", "RESHP", "AXPY", "Invocation"} {
		fmt.Printf("  %-10s %5.1f%% of accelerator time, %5.1f%% of energy\n", op, 100*ts[op], 100*es[op])
	}
	fmt.Printf("descriptors: %d (paper: 3)\n", g.MEALib.Descriptors)
	fmt.Println()
	fmt.Println("stage detail (large, MEALib plan):")
	fmt.Print(g.MEALib.RenderStages())

	if !*functional {
		return
	}
	fmt.Println()
	fmt.Println("functional run (reduced size):")
	rt, err := mealibrt.New(mealibrt.DefaultConfig())
	if err != nil {
		fail(err)
	}
	p := stap.Params{Name: "demo", NChan: 4, NPulses: 16, NRange: 512,
		NBlocks: 2, NSteering: 4, TDOF: 2, TBS: 16}
	pl, err := stap.NewPipeline(p, rt)
	if err != nil {
		fail(err)
	}
	if err := pl.LoadDatacube(1); err != nil {
		fail(err)
	}
	inv, err := pl.DopplerProcess()
	if err != nil {
		fail(err)
	}
	fmt.Printf("  doppler pass (RESHP+FFT chained): %v accel time, %v NoC traffic\n",
		inv.Report.Time, inv.Report.NoCBytes)
	if err := pl.SolveWeights(); err != nil {
		fail(err)
	}
	fmt.Println("  adaptive weights solved on host (CHERK + CPOTRF + CTRSM x2)")
	inv, err = pl.InnerProducts()
	if err != nil {
		fail(err)
	}
	fmt.Printf("  inner products: %d cdotc calls in ONE descriptor, %v accel time\n",
		inv.Report.Comps, inv.Report.Time)
	prods, err := pl.Prods()
	if err != nil {
		fail(err)
	}
	fmt.Printf("  %d products computed; first: %v\n", len(prods), prods[0])
}
