// Command mealib-bench regenerates every table and figure of the paper's
// evaluation section and prints paper-vs-reproduced comparisons.
//
// Usage:
//
//	mealib-bench            # everything
//	mealib-bench -tab 5     # one table (1..5)
//	mealib-bench -fig 9     # one figure (1, 9, 10, 11, 12, 13, 14)
//	mealib-bench -scale 2   # scale factor for the measured Figure 1
//	mealib-bench -micro .   # functional-path micro-benchmarks; writes one
//	                        # BENCH_<op>.json per op into the directory
//	mealib-bench -ooc .     # out-of-core benchmark; writes BENCH_OOC.json
//	mealib-bench -graph .   # multi-stack graph benchmark; writes BENCH_GRAPH.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mealib/internal/exp"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (1, 9, 10, 11, 12, 13, 14)")
	tab := flag.Int("tab", 0, "regenerate one table (1..5)")
	scale := flag.Int("scale", 1, "workload scale for the measured Figure 1")
	ablations := flag.Bool("ablations", false, "quantify the DESIGN.md design choices")
	asJSON := flag.Bool("json", false, "emit JSON instead of text tables")
	micro := flag.String("micro", "", "run the functional-path micro-benchmarks and write BENCH_<op>.json files into this directory")
	serve := flag.String("serve", "", "run the loaded-server benchmark (mealibd over unix sockets at 1/4/16 clients) and write BENCH_SERVE.json into this directory")
	ooc := flag.String("ooc", "", "run the out-of-core benchmark (oversized AXPY, prefetch on/off, verified against the host reference) and write BENCH_OOC.json into this directory")
	graphDir := flag.String("graph", "", "run the multi-stack graph benchmark (PageRank and BFS over 1/2/4 stacks, verified against the serial references) and write BENCH_GRAPH.json into this directory")
	launches := flag.Int("launches", 64, "per-client launch count for -serve")
	workers := flag.Int("workers", 0, "accelerator worker-pool size for -micro (0 = auto, 1 = serial)")
	opsFlag := flag.String("ops", "", "comma-separated op filter for -micro (e.g. AXPY,FFT); empty = all ops")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mealib-bench:", err)
		os.Exit(1)
	}
	printTable := func(t *exp.Table, err error) {
		if err != nil {
			fail(err)
		}
		if *asJSON {
			out, err := t.JSON()
			if err != nil {
				fail(err)
			}
			fmt.Println(out)
			return
		}
		fmt.Println(t.Render())
	}

	tables := map[int]func() (*exp.Table, error){
		1: func() (*exp.Table, error) { return exp.Table1(), nil },
		2: func() (*exp.Table, error) { return exp.Table2(), nil },
		3: func() (*exp.Table, error) { return exp.Table3(), nil },
		4: func() (*exp.Table, error) { return exp.Table4(), nil },
		5: func() (*exp.Table, error) { return exp.Table5(), nil },
	}
	figures := map[int]func() (*exp.Table, error){
		1:  func() (*exp.Table, error) { return exp.RenderFigure1(*scale) },
		9:  exp.RenderFigure9,
		10: exp.RenderFigure10,
		11: func() (*exp.Table, error) { return exp.RenderFigure11(), nil },
		12: exp.RenderFigure12,
		13: exp.RenderFigure13,
		14: exp.RenderFigure14,
	}

	switch {
	case *graphDir != "":
		path, res, err := exp.WriteGraphBench(*graphDir)
		if err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
		printTable(exp.RenderGraph(res), nil)
	case *ooc != "":
		path, res, err := exp.WriteOOCBench(*ooc)
		if err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
		printTable(exp.RenderOOC(res), nil)
	case *serve != "":
		path, res, err := exp.WriteServeBench(*serve, *launches)
		if err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
		printTable(exp.RenderServe(res), nil)
	case *micro != "":
		var ops []string
		for _, op := range strings.Split(*opsFlag, ",") {
			if op = strings.TrimSpace(op); op != "" {
				ops = append(ops, op)
			}
		}
		rows, err := exp.MicroBenchmarks(*workers, ops...)
		if err != nil {
			fail(err)
		}
		for _, r := range rows {
			out, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				fail(err)
			}
			path := filepath.Join(*micro, "BENCH_"+r.Op+".json")
			if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Println("wrote", path)
		}
		printTable(exp.RenderMicro(rows), nil)
	case *ablations:
		printTable(exp.RenderAblations())
	case *tab != 0:
		fn, ok := tables[*tab]
		if !ok {
			fail(fmt.Errorf("no table %d", *tab))
		}
		printTable(fn())
	case *fig != 0:
		fn, ok := figures[*fig]
		if !ok {
			fail(fmt.Errorf("no figure %d", *fig))
		}
		printTable(fn())
	default:
		for _, i := range []int{1, 2, 3, 4, 5} {
			printTable(tables[i]())
		}
		for _, i := range []int{1, 9, 10, 11, 12, 13, 14} {
			printTable(figures[i]())
		}
		printTable(exp.RenderAblations())
	}
}
