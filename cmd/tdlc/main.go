// Command tdlc parses a Task Description Language program (paper §3.4),
// validates it, and prints either its canonical form or the accelerator
// descriptor it compiles to (instruction listing with loop nests, passes
// and parameter references).
//
// Usage:
//
//	tdlc [-dump] [-nocheck] program.tdl
//	echo 'LOOP 128 { PASS { COMP FFT PARAMS "fft.para" } }' | tdlc -dump -
//
// Programs are run through the static verifier (internal/analysis/tdlcheck)
// by default; -nocheck skips it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mealib/internal/analysis/tdlcheck"
	"mealib/internal/descriptor"
	"mealib/internal/tdl"
)

func main() {
	dump := flag.Bool("dump", false, "print the compiled descriptor instruction listing")
	nocheck := flag.Bool("nocheck", false, "skip the static verifier")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tdlc [-dump] [-nocheck] program.tdl (use - for stdin)")
		os.Exit(2)
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdlc:", err)
		os.Exit(1)
	}
	prog, err := tdl.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdlc:", err)
		os.Exit(1)
	}
	if !*nocheck {
		if err := tdlcheck.VerifyProgram(prog); err != nil {
			fmt.Fprintln(os.Stderr, "tdlc:", err)
			os.Exit(1)
		}
	}
	if !*dump {
		fmt.Print(tdl.Format(prog))
		return
	}
	// Compile with placeholder parameters: the structure is what -dump
	// inspects; parameters bind at run time.
	d, err := tdl.Compile(prog, func(ref string) (descriptor.Params, error) {
		return descriptor.Params{0}, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdlc:", err)
		os.Exit(1)
	}
	fmt.Print(d.Disassemble())
}
