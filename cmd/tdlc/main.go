// Command tdlc parses a Task Description Language program (paper §3.4),
// validates it, and prints either its canonical form or the accelerator
// descriptor it compiles to (instruction listing with loop nests, passes
// and parameter references).
//
// Usage:
//
//	tdlc [-dump] [-nocheck] [-fuse -params table.json] program.tdl
//	echo 'LOOP 128 { PASS { COMP FFT PARAMS "fft.para" } }' | tdlc -dump -
//
// Programs are run through the static verifier (internal/analysis/tdlcheck)
// by default; -nocheck skips it. With -fuse, the descriptor fusion pass
// merges adjacent producer→consumer passes into chained passes; fusion
// analyses real operand addresses and sizes, so it needs a bound parameter
// table (-params: a JSON object mapping each PARAMS reference to its
// 64-bit words).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mealib/internal/accel"
	"mealib/internal/analysis/tdlcheck"
	"mealib/internal/descriptor"
	"mealib/internal/tdl"
)

func main() {
	dump := flag.Bool("dump", false, "print the compiled descriptor instruction listing")
	nocheck := flag.Bool("nocheck", false, "skip the static verifier")
	fuse := flag.Bool("fuse", false, "apply the descriptor fusion pass (requires -params)")
	paramsFile := flag.String("params", "", `JSON parameter table: {"fft.para": [w0, w1, ...], ...}`)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tdlc [-dump] [-nocheck] [-fuse -params table.json] program.tdl (use - for stdin)")
		os.Exit(2)
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdlc:", err)
		os.Exit(1)
	}
	prog, err := tdl.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdlc:", err)
		os.Exit(1)
	}
	if !*nocheck {
		if err := tdlcheck.VerifyProgram(prog); err != nil {
			fmt.Fprintln(os.Stderr, "tdlc:", err)
			os.Exit(1)
		}
	}
	// Parameters bind at run time; -dump inspects structure with
	// placeholders unless a table is supplied.
	resolve := func(ref string) (descriptor.Params, error) {
		return descriptor.Params{0}, nil
	}
	if *paramsFile != "" {
		raw, err := os.ReadFile(*paramsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdlc:", err)
			os.Exit(1)
		}
		var table map[string][]uint64
		if err := json.Unmarshal(raw, &table); err != nil {
			fmt.Fprintln(os.Stderr, "tdlc: params table:", err)
			os.Exit(1)
		}
		resolve = func(ref string) (descriptor.Params, error) {
			words, ok := table[ref]
			if !ok {
				return nil, fmt.Errorf("unresolved parameter reference %q", ref)
			}
			return descriptor.Params(words), nil
		}
	}
	if *fuse {
		if *paramsFile == "" {
			fmt.Fprintln(os.Stderr, "tdlc: -fuse needs real operand addresses; supply -params")
			os.Exit(2)
		}
		groups, err := tdl.Fuse(prog, resolve, accel.MEALibConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdlc: fuse:", err)
			os.Exit(1)
		}
		for _, g := range groups {
			fmt.Fprintf(os.Stderr, "tdlc: fused %s: passes %d..%d, %d B/iter kept in tile-local memory (x%d iterations)\n",
				strings.Join(g.Ops, "+"), g.FirstPass, g.FirstPass+g.Passes-1, g.HandoffBytes, g.Iters)
		}
		if len(groups) == 0 {
			fmt.Fprintln(os.Stderr, "tdlc: fuse: no fusible pass chains")
		}
	}
	if !*dump {
		fmt.Print(tdl.Format(prog))
		return
	}
	d, err := tdl.Compile(prog, resolve)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdlc:", err)
		os.Exit(1)
	}
	fmt.Print(d.Disassemble())
}
